package net

import (
	"fmt"

	"chanos/internal/core"
	"chanos/internal/machine"
	"chanos/internal/sim"
)

// WireParams models the network between the machine and its remote
// peers: deterministic, seeded propagation delay, per-packet jitter
// (which reorders packets) and i.i.d. loss. RTOCycles/MaxRetries govern
// the retransmission behaviour of every sender on the wire.
type WireParams struct {
	DelayCycles  uint64  // one-way base propagation
	JitterCycles uint64  // uniform extra in [0, JitterCycles) per packet
	LossProb     float64 // drop probability per packet, each direction
	RTOCycles    uint64  // retransmission timeout
	MaxRetries   int     // consecutive timeouts before a sender gives up
	Seed         uint64
}

// DefaultWireParams models an intra-datacenter path on the 2 GHz
// machine: 10 µs one-way delay, 2 µs jitter, no loss, 150 µs RTO.
func DefaultWireParams() WireParams {
	return WireParams{
		DelayCycles:  20_000,
		JitterCycles: 4_000,
		LossProb:     0,
		RTOCycles:    300_000,
		MaxRetries:   8,
		Seed:         1,
	}
}

func (p *WireParams) fill() {
	if p.DelayCycles == 0 {
		p.DelayCycles = 20_000
	}
	if p.RTOCycles == 0 {
		p.RTOCycles = 300_000
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Network is the simulated wire plus the remote peers on it. It attaches
// to the NIC's wire side: frames the host transmits are routed to the
// endpoint owning the connection; packets endpoints send arrive on the
// NIC RX queue the device's RSS function picks. All activity is engine
// events — remote peers consume no cycles on the simulated machine.
type Network struct {
	Eng *sim.Engine
	P   WireParams

	rng    *sim.RNG
	nic    *machine.NIC
	eps    map[ConnID]*Endpoint
	nextID ConnID

	// Stats.
	ToHost, ToClient uint64 // packets that survived the wire, per direction
	WireDrops        uint64
	Retransmits      uint64 // endpoint-side retransmissions
	GaveUp           uint64 // endpoints that exhausted MaxRetries
	WindowDeferred   uint64 // sends held back by the peer's receive window
}

// NewNetwork builds the wire and claims the NIC's transmit side.
func NewNetwork(eng *sim.Engine, nic *machine.NIC, p WireParams) *Network {
	p.fill()
	n := &Network{
		Eng:    eng,
		P:      p,
		rng:    sim.NewRNG(p.Seed),
		nic:    nic,
		eps:    make(map[ConnID]*Endpoint),
		nextID: 1,
	}
	nic.OnTransmit(n.fromHost)
	return n
}

// delay draws one packet's wire latency.
func (n *Network) delay() uint64 {
	d := n.P.DelayCycles
	if n.P.JitterCycles > 0 {
		d += n.rng.Uint64n(n.P.JitterCycles)
	}
	return d
}

// drop draws one packet's loss fate.
func (n *Network) drop() bool {
	return n.P.LossProb > 0 && n.rng.Bool(n.P.LossProb)
}

// fromHost carries a frame the NIC finished serialising to its endpoint.
func (n *Network) fromHost(f machine.Frame) {
	p, ok := f.Payload.(Packet)
	if !ok {
		return
	}
	if n.drop() {
		n.WireDrops++
		return
	}
	n.ToClient++
	n.Eng.After(n.delay(), func() {
		if ep := n.eps[p.Conn]; ep != nil {
			ep.handle(p)
		}
	})
}

// toHost carries an endpoint's packet onto the machine's NIC, landing on
// the RX queue RSS assigns to the connection.
func (n *Network) toHost(p Packet) {
	if n.drop() {
		n.WireDrops++
		return
	}
	n.ToHost++
	n.Eng.After(n.delay(), func() {
		n.nic.Arrive(machine.Frame{
			Queue:   n.nic.QueueFor(int(p.Conn)),
			Bytes:   p.MsgBytes(),
			Payload: p,
		})
	})
}

// EndpointHooks are the client-side event callbacks. All run in engine
// context at the virtual time the triggering packet is delivered.
type EndpointHooks struct {
	// OnOpen fires when the server's SYNACK arrives.
	OnOpen func(*Endpoint)
	// OnMessage fires per in-order payload, with its wire size.
	OnMessage func(ep *Endpoint, payload core.Msg, bytes int)
	// OnClose fires when the server's FIN is delivered in order.
	OnClose func(*Endpoint)
	// OnFail fires when the endpoint gives up after MaxRetries
	// consecutive timeouts (connect or retransmission).
	OnFail func(*Endpoint)
}

// Endpoint is a remote peer: the client half of one connection, driven
// entirely by engine events. It mirrors the stack's per-connection state
// (sequence assignment, reassembly, cumulative ack, retransmission).
type Endpoint struct {
	ID   ConnID
	Port int

	net     *Network
	hooks   EndpointHooks
	snd     sendFlow
	rcv     recvFlow
	open    bool // SYNACK seen
	closed  bool // we sent FIN
	done    bool // remote FIN delivered
	retries int
	rto     *sim.Event
}

// Dial opens a connection to the given port: the SYN goes on the wire
// immediately and is retried on timeout until the server answers (or
// MaxRetries is exhausted, e.g. when the listen backlog keeps shedding).
func (n *Network) Dial(port int, hooks EndpointHooks) *Endpoint {
	ep := &Endpoint{ID: n.nextID, Port: port, net: n, hooks: hooks}
	n.nextID++
	n.eps[ep.ID] = ep
	n.toHost(Packet{Conn: ep.ID, Port: port, Flags: SYN})
	ep.armRTO()
	return ep
}

// Open reports whether the handshake has completed.
func (ep *Endpoint) Open() bool { return ep.open }

// Send puts one payload on the wire with the given simulated size — or
// queues it locally when the server's advertised receive window is
// closed, instead of blasting packets the peer would only shed. Queued
// payloads go out as acks reopen the window.
func (ep *Endpoint) Send(payload core.Msg, bytes int) {
	if !ep.open {
		panic(fmt.Sprintf("net: send on unopened connection %d", ep.ID))
	}
	if ep.closed {
		return
	}
	rel := ep.snd.submit(Packet{Conn: ep.ID, Port: ep.Port, Flags: DATA, Bytes: bytes, Payload: payload})
	if len(rel) == 0 {
		ep.net.WindowDeferred++
	}
	for _, p := range rel {
		ep.net.toHost(p)
	}
	ep.armRTO()
}

// Close sends the FIN (sequenced after all data, including data still
// queued behind the window).
func (ep *Endpoint) Close() {
	if ep.closed || !ep.open {
		return
	}
	ep.closed = true
	for _, p := range ep.snd.submit(Packet{Conn: ep.ID, Port: ep.Port, Flags: FIN}) {
		ep.net.toHost(p)
	}
	ep.armRTO()
}

// rtoAfter returns the current timeout with exponential backoff: doubling
// per consecutive silent timeout keeps an overloaded server from being
// buried under retransmissions of the very queue that delays its acks.
func rtoAfter(base uint64, retries int) uint64 {
	if retries > 6 {
		retries = 6
	}
	return base << uint(retries)
}

func (ep *Endpoint) armRTO() {
	if ep.rto != nil {
		return
	}
	ep.rto = ep.net.Eng.After(rtoAfter(ep.net.P.RTOCycles, ep.retries), ep.fireRTO)
}

func (ep *Endpoint) cancelRTO() {
	if ep.rto != nil {
		ep.net.Eng.Cancel(ep.rto)
		ep.rto = nil
	}
}

func (ep *Endpoint) fireRTO() {
	ep.rto = nil
	if ep.retries >= ep.net.P.MaxRetries {
		ep.net.GaveUp++
		delete(ep.net.eps, ep.ID)
		if ep.hooks.OnFail != nil {
			ep.hooks.OnFail(ep)
		}
		return
	}
	ep.retries++
	if !ep.open {
		ep.net.toHost(Packet{Conn: ep.ID, Port: ep.Port, Flags: SYN})
		ep.net.Retransmits++
		ep.armRTO()
		return
	}
	pend := ep.snd.pending()
	for _, p := range pend {
		ep.net.toHost(p)
		ep.net.Retransmits++
	}
	if len(pend) > 0 {
		ep.armRTO()
	}
}

// handle processes one packet delivered to this endpoint.
func (ep *Endpoint) handle(p Packet) {
	switch {
	case p.Flags&SYNACK != 0:
		if ep.open {
			return // duplicate
		}
		ep.open = true
		ep.retries = 0
		ep.snd.setWindow(p.Window, 0) // server's initial receive window
		ep.cancelRTO()
		if ep.hooks.OnOpen != nil {
			ep.hooks.OnOpen(ep)
		}

	case p.Flags&ACK != 0:
		ep.retries = 0
		ep.snd.setWindow(p.Window, p.Ack)
		outstanding := ep.snd.ack(p.Ack)
		for _, q := range ep.snd.drain() {
			ep.net.toHost(q) // window reopened: release queued sends
		}
		if !outstanding {
			ep.cancelRTO()
			ep.maybeReap()
		} else if len(ep.snd.pending()) > 0 {
			ep.armRTO()
		}

	case p.Flags&(DATA|FIN) != 0:
		run := ep.rcv.accept(p)
		// Always re-ack: the peer retransmits until it hears from us.
		// Endpoints deliver straight into callbacks — no buffer to fill —
		// so they advertise an effectively unlimited window.
		ep.net.toHost(Packet{Conn: ep.ID, Port: ep.Port, Flags: ACK, Ack: ep.rcv.cumAck(), Window: defaultWindow})
		for _, q := range run {
			if q.Flags&FIN != 0 {
				ep.done = true
				if ep.hooks.OnClose != nil {
					ep.hooks.OnClose(ep)
				}
				ep.maybeReap()
			} else if ep.hooks.OnMessage != nil {
				ep.hooks.OnMessage(ep, q.Payload, q.Bytes)
			}
		}
	}
}

// maybeReap removes the endpoint once both directions are finished.
func (ep *Endpoint) maybeReap() {
	if ep.done && ep.closed && ep.snd.done() {
		ep.cancelRTO()
		delete(ep.net.eps, ep.ID)
	}
}
