package net

import (
	"fmt"

	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/sim"
	"chanos/internal/sim/detmap"
)

// StackParams tunes the netstack service.
type StackParams struct {
	// Shards is the number of netstack handler threads; connections are
	// routed to shard machine.HashMix(ConnID) % Shards (mixed so churning
	// sequential ids spread evenly). 0 = one shard per kernel core.
	Shards int
	// AcceptBacklog is the listener accept-channel capacity; a SYN that
	// finds it full is shed (the client retries). Default 64.
	AcceptBacklog int
	// RecvBuf is the per-connection receive channel capacity. Packets
	// that find it full are shed unacknowledged (the peer retransmits),
	// so a slow reader costs itself retransmissions instead of stalling
	// its shard. Default 256.
	RecvBuf int
	// RxIRQCycles is the interrupt + driver cost a shard pays per
	// received frame. Default 1200 (~0.6 µs).
	RxIRQCycles uint64
	// RTOCycles / MaxRetries govern server-side retransmission.
	// Defaults 300_000 and 8.
	RTOCycles  uint64
	MaxRetries int
	// IdleCycles is how long a connection may stay completely silent
	// before the shard reaps it (the peer vanished without a FIN — gave
	// up, or its final packets were all lost). Must exceed the longest
	// backed-off retransmission gap, or a struggling-but-alive peer gets
	// reaped mid-retry. Default 128 × RTOCycles.
	IdleCycles uint64
}

func (p *StackParams) fill() {
	if p.AcceptBacklog <= 0 {
		p.AcceptBacklog = 64
	}
	if p.RecvBuf <= 0 {
		p.RecvBuf = 256
	}
	if p.RxIRQCycles == 0 {
		p.RxIRQCycles = 1200
	}
	if p.RTOCycles == 0 {
		p.RTOCycles = 300_000
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 8
	}
	if p.IdleCycles == 0 {
		p.IdleCycles = 128 * p.RTOCycles
	}
}

// rxFrame is the kernel request argument for a received frame.
type rxFrame struct {
	Queue int
	Pkt   Packet
}

// MsgBytes implements core.Sized.
func (r rxFrame) MsgBytes() int { return r.Pkt.MsgBytes() }

// txReq is the kernel request argument for an application send.
type txReq struct {
	Payload core.Msg
	Bytes   int
}

// MsgBytes implements core.Sized.
func (r txReq) MsgBytes() int { return 16 + r.Bytes }

// stackConn is the per-connection state owned by exactly one shard
// thread — mutated without any locking, because routing by ConnID means
// no other thread ever touches it.
type stackConn struct {
	id   ConnID
	port int

	snd    sendFlow
	rcv    recvFlow
	recvCh *core.Chan

	finSent, finRcvd bool
	retries          int
	rto              *sim.Event
	lastRx           sim.Time // last packet seen; idle sweep reaps silence
}

// closedRec remembers a retired connection: when it went, and whether
// it went cleanly (FIN handshake — we provably received everything) or
// not (idle-reaped or gave up — later arrivals may be genuinely new
// data that must NOT be acknowledged).
type closedRec struct {
	at    sim.Time
	clean bool
}

// shardState is one shard's private connection table, plus a TIME_WAIT
// set: connection ids that closed recently, kept so a delayed duplicate
// SYN cannot resurrect a finished connection as a ghost.
type shardState struct {
	id         int
	conns      map[ConnID]*stackConn
	closed     map[ConnID]closedRec
	sweepArmed bool // an idle sweep is scheduled

	// m is this shard's private metric set: incremented freely on the
	// shard's handler thread, folded only when statd sweeps by (see
	// internal/telemetry and net/telemetry.go).
	m StackCounters
}

// Listener is a port bound to an accept channel: accepting a connection
// is receiving a *Conn message, nothing more.
type Listener struct {
	Port   int
	accept *core.Chan
}

// AcceptChan exposes the raw accept channel (e.g. for Choose).
func (l *Listener) AcceptChan() *core.Chan { return l.accept }

// Accept blocks until the next connection arrives. ok is false once the
// listener's channel is closed.
func (l *Listener) Accept(t *core.Thread) (*Conn, bool) {
	v, ok := l.accept.Recv(t)
	if !ok {
		return nil, false
	}
	return v.(*Conn), true
}

// Conn is the application's socket: a receive channel carrying in-order
// payloads (closed when the peer's FIN arrives) and a Send that is a
// message to the connection's netstack shard. A connection IS a pair of
// channels — the paper's "plumb a connection by passing around a
// channel" made literal.
type Conn struct {
	id    ConnID
	port  int
	stack *Stack
	recv  *core.Chan
}

// MsgBytes implements core.Sized (a Conn travels through the accept
// channel as a capability).
func (c *Conn) MsgBytes() int { return 64 }

// ID returns the connection id.
func (c *Conn) ID() ConnID { return c.id }

// RecvChan exposes the receive channel (e.g. for Choose over sockets).
func (c *Conn) RecvChan() *core.Chan { return c.recv }

// Recv returns the next in-order payload; ok is false after the peer
// closes and the buffer drains.
func (c *Conn) Recv(t *core.Thread) (core.Msg, bool) {
	return c.recv.Recv(t)
}

// Send transmits one payload with the given simulated wire size.
func (c *Conn) Send(t *core.Thread, payload core.Msg, bytes int) {
	c.stack.shardChan(c.id).Send(t, kernel.Request{
		Op: "tx", Key: int(c.id), Arg: txReq{Payload: payload, Bytes: bytes},
	})
}

// Close sends the FIN after all queued data.
func (c *Conn) Close(t *core.Thread) {
	c.stack.shardChan(c.id).Send(t, kernel.Request{Op: "close", Key: int(c.id)})
}

// Stack is the netstack: a sharded kernel service bridging the NIC to
// socket channels.
type Stack struct {
	rt  *core.Runtime
	k   *kernel.Kernel
	nic *machine.NIC
	svc *kernel.Service
	P   StackParams

	listeners map[int]*Listener

	// states indexes each shard's private state for telemetry sweeps;
	// populated eagerly while RegisterEach builds the handlers. Only the
	// metric fields are read from outside the owning shard thread, and
	// only between run slices or from statd's engine-context collector.
	states []*shardState
}

// NewStack registers the "net" service on k's kernel cores and claims
// the NIC's receive side: every frame is injected into the shard owning
// its connection, so one connection's packets are processed in series by
// one thread while distinct connections proceed in parallel.
func NewStack(rt *core.Runtime, k *kernel.Kernel, nic *machine.NIC, p StackParams) *Stack {
	p.fill()
	s := &Stack{rt: rt, k: k, nic: nic, P: p, listeners: make(map[int]*Listener)}
	s.svc = k.RegisterEach("net", p.Shards, s.shardHandler)
	nic.OnReceive(func(queue int, f machine.Frame) {
		pkt, ok := f.Payload.(Packet)
		if !ok {
			nic.RxDone(queue)
			return
		}
		rt.InjectSend(s.shardChan(pkt.Conn), kernel.Request{
			Op: "rx", Key: int(pkt.Conn), Arg: rxFrame{Queue: queue, Pkt: pkt},
		}, queue%rt.NumCores())
	})
	return s
}

// Shards returns the number of netstack shards.
func (s *Stack) Shards() int { return s.svc.Shards() }

// shardChan routes a connection to its owning shard. The id is mixed
// (same hash as the NIC's RSS) so the live-connection id pattern —
// sequential, churning — spreads evenly instead of striding.
func (s *Stack) shardChan(id ConnID) *core.Chan {
	return s.svc.ShardFor(machine.HashMix(int(id)))
}

// Listen binds a port and returns its listener.
func (s *Stack) Listen(port int) *Listener {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("net: port %d already bound", port))
	}
	l := &Listener{
		Port:   port,
		accept: s.rt.NewChan(fmt.Sprintf("listen.%d", port), s.P.AcceptBacklog),
	}
	s.listeners[port] = l
	return l
}

// shardHandler builds the handler closure for one shard; state lives in
// the closure, reachable only from that shard's thread.
func (s *Stack) shardHandler(shard int) kernel.Handler {
	st := &shardState{
		id:     shard,
		conns:  make(map[ConnID]*stackConn),
		closed: make(map[ConnID]closedRec),
	}
	for len(s.states) <= shard {
		s.states = append(s.states, nil)
	}
	s.states[shard] = st
	return func(t *core.Thread, req kernel.Request) core.Msg {
		switch req.Op {
		case "rx":
			a := req.Arg.(rxFrame)
			s.nic.RxDone(a.Queue)
			t.Compute(s.P.RxIRQCycles)
			s.rx(t, st, a.Pkt)
		case "tx":
			a := req.Arg.(txReq)
			c := st.conns[ConnID(req.Key)]
			if c == nil || c.finSent {
				return nil // connection gone: data silently dropped
			}
			s.sendSeq(t, st, c, Packet{Conn: c.id, Port: c.port, Flags: DATA, Bytes: a.Bytes, Payload: a.Payload})
		case "close":
			c := st.conns[ConnID(req.Key)]
			if c == nil || c.finSent {
				return nil
			}
			c.finSent = true
			s.sendSeq(t, st, c, Packet{Conn: c.id, Port: c.port, Flags: FIN})
		case "rto":
			s.rto(t, st, ConnID(req.Key))
		case "sweep":
			s.sweep(t, st)
		}
		return nil
	}
}

// ensureSweep keeps one idle sweep scheduled while the shard has live
// connections. It re-enters the shard as a service message (Key is the
// shard's own index, which routes to itself) and stops rearming once the
// table empties, so simulations still quiesce.
func (s *Stack) ensureSweep(t *core.Thread, st *shardState) {
	if st.sweepArmed || len(st.conns) == 0 {
		return
	}
	st.sweepArmed = true
	from := t.Core()
	s.rt.Eng.After(s.P.IdleCycles/4, func() {
		s.rt.InjectSend(s.svc.Shard(st.id), kernel.Request{Op: "sweep", Key: st.id}, from)
	})
}

// sweep reaps connections that have been completely silent for
// IdleCycles: their peer is gone (gave up, or every closing packet was
// lost) and nothing else will ever remove them. Iteration is in id
// order — reaping closes channels, which schedules events.
func (s *Stack) sweep(t *core.Thread, st *shardState) {
	st.sweepArmed = false
	now := s.rt.Eng.Now()
	for _, id := range detmap.Keys(st.conns) {
		c := st.conns[id]
		if now-c.lastRx <= s.P.IdleCycles {
			continue
		}
		st.m.IdleReaped++
		s.clearRTO(c)
		if !c.finRcvd {
			c.recvCh.Close(t)
		}
		s.retire(st, c, false)
	}
	s.ensureSweep(t, st)
}

// rx processes one received packet on its owning shard.
func (s *Stack) rx(t *core.Thread, st *shardState, p Packet) {
	st.m.RxPackets++
	switch {
	case p.Flags&SYN != 0:
		if c := st.conns[p.Conn]; c != nil {
			// Duplicate SYN: our SYNACK was lost or is in flight. The
			// retry proves the peer is alive — keep the idle sweep away.
			c.lastRx = s.rt.Eng.Now()
			s.transmit(t, st, Packet{Conn: c.id, Port: c.port, Flags: SYNACK, Window: s.advWindow(c)})
			return
		}
		if rec, was := st.closed[p.Conn]; was {
			if s.rt.Eng.Now()-rec.at <= timeWait*s.P.RTOCycles {
				return // stale duplicate SYN for a finished connection
			}
			// TIME_WAIT expired: the id may be legitimately reused.
			delete(st.closed, p.Conn)
		}
		l := s.listeners[p.Port]
		if l == nil {
			return // no listener: the void swallows the SYN
		}
		c := &stackConn{
			id:     p.Conn,
			port:   p.Port,
			snd:    sendFlow{wnd: defaultWindow},
			recvCh: t.NewChan(fmt.Sprintf("conn.%d.recv", p.Conn), s.P.RecvBuf),
			lastRx: s.rt.Eng.Now(),
		}
		conn := &Conn{id: p.Conn, port: p.Port, stack: s, recv: c.recvCh}
		if !l.accept.TrySend(t, conn) {
			st.m.AcceptDrops++ // backlog full: shed; the client will retry
			return
		}
		st.conns[p.Conn] = c
		st.m.Accepts++
		s.transmit(t, st, Packet{Conn: c.id, Port: c.port, Flags: SYNACK, Window: s.advWindow(c)})
		s.ensureSweep(t, st)

	case p.Flags&ACK != 0:
		c := st.conns[p.Conn]
		if c == nil {
			return
		}
		c.lastRx = s.rt.Eng.Now()
		c.retries = 0
		c.snd.setWindow(p.Window, p.Ack)
		outstanding := c.snd.ack(p.Ack)
		for _, q := range c.snd.drain() {
			s.transmit(t, st, q) // the peer's window reopened: release queued data
		}
		if len(c.snd.pending()) > 0 {
			s.armRTO(t, c)
		}
		if !outstanding {
			s.clearRTO(c)
			if c.finSent && c.finRcvd {
				s.retire(st, c, true) // fully closed and acknowledged
			}
		}

	case p.Flags&(DATA|FIN) != 0:
		c := st.conns[p.Conn]
		if c == nil {
			if rec, was := st.closed[p.Conn]; was && rec.clean {
				// Retransmission to a cleanly retired connection (our
				// final ACK was lost): the FIN handshake proved we had
				// everything contiguous, so acking its seq is safe — and
				// without this the peer retries into a void and reports
				// failure on a connection that in fact completed. An
				// uncleanly retired connection (idle-reaped, gave up)
				// must stay silent: acking would claim delivery of data
				// that was dropped.
				s.transmit(t, st, Packet{Conn: p.Conn, Port: p.Port, Flags: ACK, Ack: p.Seq, Window: defaultWindow})
			}
			return
		}
		c.lastRx = s.rt.Eng.Now()
		run := c.rcv.accept(p)
		for i, q := range run {
			if q.Flags&FIN != 0 {
				c.finRcvd = true
				c.recvCh.Close(t)
				if c.finSent && c.snd.done() {
					s.retire(st, c, true)
				}
			} else if c.recvCh.TrySend(t, q.Payload) {
				st.m.Delivered++
			} else {
				// Socket buffer full. Never block the shard on one
				// connection's slow reader (the app thread might itself
				// be blocked sending to this shard — that way lies
				// deadlock): shed the rest of the run unacknowledged and
				// let the peer's retransmission redeliver it.
				c.rcv.unaccept(run[i:])
				st.m.RecvFull += uint64(len(run) - i)
				break
			}
		}
		// Ack what was actually taken — and re-ack duplicates, so a peer
		// whose ack was lost stops retransmitting. The advertised window
		// tells the peer how much more the socket buffer can take: 0
		// throttles it to probes instead of a retransmit storm.
		s.transmit(t, st, Packet{Conn: c.id, Port: c.port, Flags: ACK, Ack: c.rcv.cumAck(), Window: s.advWindow(c)})
	}
}

// advWindow is the receive window advertised for a connection: free
// slots in its socket buffer. The reassembly queue is not subtracted —
// held out-of-order packets were charged to the wire already and will
// be delivered or shed when their gap fills; the shed path remains the
// safety net for the overshoot.
func (s *Stack) advWindow(c *stackConn) int {
	w := c.recvCh.Cap() - c.recvCh.Len()
	if w < 0 {
		w = 0
	}
	return w
}

// timeWait is how long a finished connection id stays in the TIME_WAIT
// set, as a multiple of the RTO: long enough to outlive any duplicate
// SYN still in flight or scheduled for retransmission.
const timeWait = 16

// retire removes a finished connection and remembers its id in
// TIME_WAIT; clean marks a completed FIN handshake (see closedRec).
// The set is purged lazily once it grows; expiry is order-insensitive,
// so map iteration hurts nothing.
func (s *Stack) retire(st *shardState, c *stackConn, clean bool) {
	delete(st.conns, c.id)
	now := s.rt.Eng.Now()
	st.closed[c.id] = closedRec{at: now, clean: clean}
	if len(st.closed) >= 512 {
		horizon := timeWait * s.P.RTOCycles
		for id, rec := range st.closed {
			if now-rec.at > horizon {
				delete(st.closed, id)
			}
		}
	}
}

// sendSeq submits a sequenced packet: whatever the peer's window admits
// goes on the wire now (tracked for retransmission), the rest queues
// until acks reopen the window.
func (s *Stack) sendSeq(t *core.Thread, st *shardState, c *stackConn, p Packet) {
	wasQueued := len(c.snd.queued)
	for _, q := range c.snd.submit(p) {
		s.transmit(t, st, q)
	}
	if len(c.snd.queued) > wasQueued {
		// The peer's advertised window blocked this submission: the
		// packet waits for an ack to reopen it. Counted per stalled
		// submission, so the rate tracks how often senders outrun
		// receivers.
		st.m.WindowStalls++
	}
	if len(c.snd.pending()) > 0 {
		s.armRTO(t, c)
	}
}

// transmit pays the descriptor cost and hands the packet to this core's
// TX queue.
func (s *Stack) transmit(t *core.Thread, st *shardState, p Packet) {
	t.Compute(s.nic.P.TxDMACycles)
	st.m.TxPackets++
	s.nic.Transmit(machine.Frame{
		Queue:   t.Core() % s.nic.Queues(),
		Bytes:   p.MsgBytes(),
		Payload: p,
	})
}

// armRTO schedules a retransmission check; it fires back into the shard
// as an ordinary service message, so retransmission needs no locking
// either.
func (s *Stack) armRTO(t *core.Thread, c *stackConn) {
	if c.rto != nil {
		return
	}
	id, from := c.id, t.Core()
	c.rto = s.rt.Eng.After(rtoAfter(s.P.RTOCycles, c.retries), func() {
		c.rto = nil
		s.rt.InjectSend(s.shardChan(id), kernel.Request{Op: "rto", Key: int(id)}, from)
	})
}

func (s *Stack) clearRTO(c *stackConn) {
	if c.rto != nil {
		s.rt.Eng.Cancel(c.rto)
		c.rto = nil
	}
}

// rto retransmits a connection's outstanding packets, or tears the
// connection down after MaxRetries consecutive silent timeouts.
func (s *Stack) rto(t *core.Thread, st *shardState, id ConnID) {
	c := st.conns[id]
	if c == nil {
		return
	}
	pend := c.snd.pending()
	if len(pend) == 0 {
		return
	}
	if c.retries >= s.P.MaxRetries {
		st.m.GaveUp++
		if !c.finRcvd {
			c.recvCh.Close(t)
		}
		s.retire(st, c, false)
		return
	}
	c.retries++
	for _, p := range pend {
		s.transmit(t, st, p)
		st.m.Retransmits++
	}
	s.armRTO(t, c)
}
