package net

import "chanos/internal/telemetry"

// StackCounters is one netstack shard's counter set. Every field is an
// exported uint64 so telemetry.EmitCounters / SumCounters can walk it
// by reflection at sweep time; the hot path only ever does st.m.X++ on
// the owning shard thread — no shared memory, no atomics.
type StackCounters struct {
	Accepts      uint64 // connections accepted
	AcceptDrops  uint64 // SYNs shed because the listener backlog was full
	RxPackets    uint64 // frames processed off the NIC
	TxPackets    uint64 // packets handed to the NIC
	Delivered    uint64 // payloads handed to sockets
	RecvFull     uint64 // packets shed because a socket buffer was full
	Retransmits  uint64 // packets re-sent on an RTO firing
	GaveUp       uint64 // connections torn down after MaxRetries silent RTOs
	IdleReaped   uint64 // silent connections reaped by the idle sweep
	WindowStalls uint64 // sends queued because the peer's window was shut
}

// Counters folds every shard's private set into one total. Call between
// run slices (or from statd's collector): the fold races with nothing
// because the simulation is not advancing.
func (s *Stack) Counters() StackCounters {
	var out StackCounters
	for _, st := range s.states {
		if st != nil {
			telemetry.SumCounters(&out, &st.m)
		}
	}
	return out
}

// CollectShard implements telemetry.Source: one shard's counters plus
// the gauges only the live connection table can answer — how many
// connections the shard owns, how many out-of-order packets sit in
// reassembly, and how many sends are parked on a shut peer window.
func (s *Stack) CollectShard(shard int, emit func(telemetry.Value)) {
	st := s.states[shard]
	if st == nil {
		return
	}
	telemetry.EmitCounters(&st.m, emit)
	var held, queued int
	for _, c := range st.conns {
		held += len(c.rcv.held)
		queued += len(c.snd.queued)
	}
	emit(telemetry.Gauge("Conns", uint64(len(st.conns))))
	emit(telemetry.Gauge("TimeWait", uint64(len(st.closed))))
	emit(telemetry.Gauge("ReassemblyHeld", uint64(held)))
	emit(telemetry.Gauge("SendQueued", uint64(queued)))
	emit(telemetry.Gauge("QueueDepth", uint64(s.svc.Shard(shard).Len())))
}
