package net

import (
	"chanos/internal/sim"
	"chanos/internal/sim/detmap"
)

// ConnSnapshot is one connection's netstack state as captured into a
// machine core dump: sequence horizons, buffer and reassembly
// occupancy, retransmission state. Payload contents are not carried —
// occupancy counts identify a wedged flow; the store sections carry
// the durable data.
type ConnSnapshot struct {
	ID             int      `json:"id"`
	Port           int      `json:"port"`
	NextSeq        uint64   `json:"next_seq"`
	RecvNext       uint64   `json:"recv_next"`
	SendUnacked    int      `json:"send_unacked"`
	SendQueued     int      `json:"send_queued"`
	Window         int      `json:"window"`
	RecvBuffered   int      `json:"recv_buffered"`
	ReassemblyHeld int      `json:"reassembly_held"`
	FinSent        bool     `json:"fin_sent,omitempty"`
	FinRcvd        bool     `json:"fin_rcvd,omitempty"`
	Retries        int      `json:"retries,omitempty"`
	RTOArmed       bool     `json:"rto_armed,omitempty"`
	LastRx         sim.Time `json:"last_rx"`
}

// StackShardSnapshot is one netstack shard's connection table and
// counter set, connections sorted by id.
type StackShardSnapshot struct {
	Shard    int            `json:"shard"`
	TimeWait int            `json:"time_wait"`
	Conns    []ConnSnapshot `json:"conns,omitempty"`
	Counters StackCounters  `json:"counters"`
}

// SnapshotShards captures every shard's private connection table in
// shard order. Read-only on the shards; safe between engine events
// (the same single-goroutine window statd's collector uses).
func (s *Stack) SnapshotShards() []StackShardSnapshot {
	out := make([]StackShardSnapshot, 0, len(s.states))
	for i, st := range s.states {
		if st == nil {
			out = append(out, StackShardSnapshot{Shard: i})
			continue
		}
		snap := StackShardSnapshot{Shard: i, TimeWait: len(st.closed), Counters: st.m}
		for _, id := range detmap.Keys(st.conns) {
			c := st.conns[id]
			snap.Conns = append(snap.Conns, ConnSnapshot{
				ID:             int(id),
				Port:           c.port,
				NextSeq:        c.snd.nextSeq,
				RecvNext:       c.rcv.next,
				SendUnacked:    len(c.snd.unacked),
				SendQueued:     len(c.snd.queued),
				Window:         c.snd.wnd,
				RecvBuffered:   c.recvCh.Len(),
				ReassemblyHeld: len(c.rcv.held),
				FinSent:        c.finSent,
				FinRcvd:        c.finRcvd,
				Retries:        c.retries,
				RTOArmed:       c.rto != nil && !c.rto.Canceled(),
				LastRx:         c.lastRx,
			})
		}
		out = append(out, snap)
	}
	return out
}
