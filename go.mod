module chanos

go 1.24
