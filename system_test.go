package chanos_test

import (
	"errors"
	"fmt"
	"testing"

	"chanos"
	"chanos/internal/blockdev"
	"chanos/internal/compat"
	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/supervise"
	"chanos/internal/vfs"
)

// TestWholeSystemScenario boots every subsystem together — message
// kernel, vnode-thread FS, compat layer, supervision — and runs a small
// end-to-end scenario twice to check both behaviour and determinism.
func TestWholeSystemScenario(t *testing.T) {
	run := func() (endTime chanos.Time, fsOps uint64, restarts uint64) {
		sys := chanos.New(32, chanos.Config{Seed: 1234})
		defer sys.Shutdown()

		// Kernel with a clock service.
		k := kernel.New(sys.RT, kernel.Config{KernelCoreFraction: 0.25})
		k.Register("clock", 1, func(t *core.Thread, req kernel.Request) core.Msg {
			return t.Now()
		})

		// Disk + message FS.
		disk := blockdev.NewDisk(sys.RT, blockdev.DefaultDiskParams(8192))
		drv := blockdev.NewDriver(sys.RT, disk, 64, 1)

		var msgfs *vfs.MsgFS
		crashes := 0
		sys.Boot("init", func(th *core.Thread) {
			sb, err := vfs.Format(th, drv, 8192, 1024)
			if err != nil {
				t.Errorf("format: %v", err)
				return
			}
			msgfs = vfs.NewMsgFS(sys.RT, drv, sb, vfs.MsgFSConfig{})

			// A supervised logger service writing through the compat
			// layer; it crashes twice and must come back.
			logReq := sys.NewChan("log", 16)
			sup := supervise.Spawn(th, "logger-sup",
				supervise.Config{Strategy: supervise.OneForOne, MaxRestarts: 10},
				[]supervise.ChildSpec{{
					Name: "logger",
					Start: func(lt *core.Thread) {
						p := compat.NewProc(msgfs)
						fd, err := p.Open(lt, "/var.log", compat.OCreate|compat.OWrOnly)
						if err != nil {
							lt.Fail(err)
						}
						p.Lseek(lt, fd, 0, compat.SeekEnd)
						for {
							v, ok := logReq.Recv(lt)
							if !ok {
								return
							}
							line := v.(string)
							if line == "CRASH" {
								crashes++
								lt.Fail(errors.New("injected logger crash"))
							}
							if _, err := p.Write(lt, fd, []byte(line+"\n")); err != nil {
								lt.Fail(err)
							}
						}
					},
				}})

			// The application: uses the kernel clock, writes log lines,
			// injects two crashes along the way.
			app := th.Spawn("app", func(at *core.Thread) {
				for i := 0; i < 20; i++ {
					now := k.Call(at, "clock", 0, "now", nil).(chanos.Time)
					_ = now
					logReq.Send(at, fmt.Sprintf("event %d", i))
					if i == 5 || i == 12 {
						logReq.Send(at, "CRASH")
					}
					at.Compute(5_000)
				}
				at.Sleep(2_000_000) // let the logger drain
				sup.Stop(at)
				k.Stop(at)
			})
			_ = app
		})
		sys.Run()

		// Verify the log contains every event despite the crashes. Lines
		// sent to a dead logger before its restart may be lost from the
		// channel the instant of the kill; the supervised service itself
		// must have kept accepting afterwards.
		var content []byte
		check := sys.Boot("check", func(th *core.Thread) {
			p := compat.NewProc(msgfs)
			in, err := p.Stat(th, "/var.log")
			if err != nil {
				t.Errorf("stat log: %v", err)
				return
			}
			if in.Size == 0 {
				t.Error("log is empty")
			}
			fd, _ := p.Open(th, "/var.log", compat.ORdOnly)
			content, _ = p.Read(th, fd, int(in.Size))
		})
		sys.Run()
		if check.ExitReason() != nil {
			t.Fatalf("checker died: %v", check.ExitReason())
		}
		if crashes != 2 {
			t.Fatalf("crashes = %d, want 2", crashes)
		}
		if len(content) == 0 {
			t.Fatal("no log content read back")
		}
		return sys.Now(), msgfs.CacheStats().Hits, sys.Stats().Kills
	}

	t1, h1, k1 := run()
	t2, h2, k2 := run()
	if t1 != t2 || h1 != h2 || k1 != k2 {
		t.Fatalf("whole-system run is nondeterministic: (%d,%d,%d) vs (%d,%d,%d)",
			t1, h1, k1, t2, h2, k2)
	}
}

// TestFacadeStrictMode exercises the facade's strict shared-nothing mode.
func TestFacadeStrictMode(t *testing.T) {
	sys := chanos.New(4, chanos.Config{Seed: 9, Strict: true})
	defer sys.Shutdown()
	ch := sys.NewChan("c", 1)
	payload := []int{1, 2, 3}
	var got []int
	sys.Boot("tx", func(th *chanos.Thread) {
		ch.Send(th, payload)
		payload[0] = 99
	})
	sys.Boot("rx", func(th *chanos.Thread) {
		th.Sleep(10_000)
		v, _ := ch.Recv(th)
		got = v.([]int)
	})
	sys.Run()
	if got[0] != 1 {
		t.Fatal("strict mode leaked a mutation through the facade")
	}
	if sys.Stats().BytesCopied == 0 {
		t.Fatal("no copy bytes recorded")
	}
}

// TestFacadeBlockedReporting checks deadlock visibility through the facade.
func TestFacadeBlockedReporting(t *testing.T) {
	sys := chanos.New(2, chanos.Config{Seed: 2})
	defer sys.Shutdown()
	ch := sys.NewChan("never", 0)
	sys.Boot("stuck", func(th *chanos.Thread) { ch.Recv(th) })
	sys.Run()
	b := sys.Blocked()
	if len(b) != 1 || b[0] != "stuck" {
		t.Fatalf("Blocked() = %v", b)
	}
}
