// Root benchmark harness: one testing.B benchmark per experiment table/
// figure (see EXPERIMENTS.md), plus wall-clock microbenchmarks of the
// runtime itself. Experiment benchmarks run the full experiment per
// iteration — use -benchtime=1x for a single regeneration:
//
//	go test -bench=BenchmarkE1 -benchtime=1x
//	go test -bench=. -benchmem
package chanos_test

import (
	"testing"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/exp"
)

// benchOpts keeps benchmark runs fast; the chanos-bench CLI runs the full
// sweeps.
var benchOpts = exp.Options{Quick: true, Seed: 42}

func benchExperiment(b *testing.B, id string) {
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(benchOpts)
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// One benchmark per experiment (tables and figures).

func BenchmarkE1KernelScaling(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2SyscallMechanisms(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3Primitives(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4AsyncIO(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5VnodeFS(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6VMGranularity(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7Availability(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8DriverModel(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Placement(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10ProtoVerify(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Choice(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12CopySemantics(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13VMCluster(b *testing.B)        { benchExperiment(b, "E13") }

// BenchmarkNetstack is the headline traffic-serving benchmark: the full
// E14 netstack scaling experiment (cores and shard sweeps).
func BenchmarkNetstack(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkStore is the headline stateful-serving benchmark: the full
// E15 store scaling experiment (cores, store shards, read/write mix).
func BenchmarkStore(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkStoreReplication is the machine-loss durability benchmark:
// the full E16 experiment (local vs quorum cost, seeded primary kills).
func BenchmarkStoreReplication(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkStoreHeal is the replication-lifecycle benchmark: the full
// E17 experiment (kill/failover/re-attach/heal cycles, replica reads).
func BenchmarkStoreHeal(b *testing.B) { benchExperiment(b, "E17") }

// Ablations (design-choice knobs called out in DESIGN.md).

func BenchmarkA1MsgCostSensitivity(b *testing.B)  { benchExperiment(b, "A1") }
func BenchmarkA2QueueDepth(b *testing.B)          { benchExperiment(b, "A2") }
func BenchmarkA3KernelCoreFraction(b *testing.B)  { benchExperiment(b, "A3") }
func BenchmarkA4TrapCostSensitivity(b *testing.B) { benchExperiment(b, "A4") }

// --- wall-clock microbenchmarks: host cost of the simulator itself ---

// BenchmarkRuntimeSendRecv measures the real (host) cost per simulated
// rendezvous message, i.e. how expensive the deterministic gating is.
func BenchmarkRuntimeSendRecv(b *testing.B) {
	sys := chanos.New(4, chanos.Config{Seed: 1})
	defer sys.Shutdown()
	ch := sys.NewChan("bench", 0)
	stop := false
	sys.Boot("rx", func(t *chanos.Thread) {
		for !stop {
			ch.Recv(t)
		}
	}, chanos.OnCore(1))
	n := 0
	sys.Boot("tx", func(t *chanos.Thread) {
		for !stop {
			ch.Send(t, n)
			n++
		}
	}, chanos.OnCore(0))
	b.ReportAllocs()
	b.ResetTimer()
	// Drive the engine for as many events as b.N sends require.
	for n < b.N {
		sys.RunFor(1_000_000)
	}
	b.StopTimer()
	stop = true
	sys.RunFor(10_000_000) // let the loops observe stop and exit
}

// BenchmarkRuntimeSpawn measures host cost per simulated thread spawn.
func BenchmarkRuntimeSpawn(b *testing.B) {
	sys := chanos.New(8, chanos.Config{Seed: 1})
	defer sys.Shutdown()
	done := make(chan struct{})
	sys.Boot("spawner", func(t *chanos.Thread) {
		for i := 0; i < b.N; i++ {
			t.Spawn("child", func(t2 *core.Thread) {})
		}
		close(done)
	})
	b.ReportAllocs()
	b.ResetTimer()
	sys.Run()
	<-done
}

// BenchmarkEngineEvents measures raw event throughput of the DES engine.
func BenchmarkEngineEvents(b *testing.B) {
	sys := chanos.New(1, chanos.Config{Seed: 1})
	defer sys.Shutdown()
	var fire func(d uint64)
	fire = func(d uint64) {
		sys.Eng.After(d, func() { fire(1) })
	}
	fire(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Eng.Step()
	}
}
