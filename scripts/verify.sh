#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus quick experiment smokes.
#
# Usage: scripts/verify.sh [-short]
#   -short   skip the experiment smokes (build/vet/chanos-vet/gofmt/
#            test + race tier only)
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
[ "${1:-}" = "-short" ] && short=1

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== chanos-vet ./... (determinism + no-shared-memory contracts)"
# Hard gate: any non-waived finding from the four custom analyzers
# (mapiter, wallclock, sharedstate, msgownership) fails the build.
# Suppression is only possible via inline, justified
# //chanos:allow waivers, which the tool counts and prints.
go run ./cmd/chanos-vet ./...

echo "== gofmt check"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./..."
# The race tier runs in -short mode too: the simulator's contract is
# no shared memory outside the engine layer, and the detector holds
# the engine/device layer (the one place goroutines are allowed) to
# it. Long sweeps are skipped — the schedules they explore don't add
# new happens-before edges, just more of the same ones.
go test -race -short ./...

if [ "$short" = "0" ]; then
    echo "== E14 netstack smoke (quick)"
    out=$(go run ./cmd/chanos-bench -run E14 -quick)
    echo "$out"
    # The table must exist and must not report a dead netstack: every
    # conns/sec cell being 0.00 means the stack served nothing.
    echo "$out" | grep -q "E14 / netstack scaling" || {
        echo "verify: E14 table missing" >&2
        exit 1
    }
    if ! echo "$out" | awk '/^(4|16|64|256) /{ if ($3 != "0.00") ok=1 } END { exit !ok }'; then
        echo "verify: netstack served zero connections in every configuration" >&2
        exit 1
    fi

    echo "== E15 store smoke (quick, -json)"
    out=$(go run ./cmd/chanos-bench -run E15 -quick -json)
    echo "$out"
    echo "$out" | grep -q "E15 / store scaling" || {
        echo "verify: E15 table missing" >&2
        exit 1
    }
    # The cores-sweep rows must show a live store: some ops/sec cell != 0.
    # Slice out the cores-sweep table first — E15b/E15c rows also start
    # with a small integer, but their $3 is a different column.
    if ! echo "$out" | sed -n '/E15 \/ store scaling/,/^$/p' \
        | awk '/^(4|16|64|128) /{ if ($3 != "0.00") ok=1 } END { exit !ok }'; then
        echo "verify: store served zero operations in every configuration" >&2
        exit 1
    fi
    # The E15d sustained-churn table is the compaction gate: a tiny-region
    # workload writes many times the log capacity, and not one write may
    # be refused ("refused" column all 0) while compactions actually run.
    churn=$(echo "$out" | sed -n '/E15d \/ sustained churn/,/^$/p')
    [ -n "$churn" ] || {
        echo "verify: E15d churn table missing" >&2
        exit 1
    }
    if ! echo "$churn" | awk '/^[0-9]/{ rows++; if ($3 != "0") bad=1; if ($4+0 > 0) compacted=1 }
        END { exit !(rows > 0 && !bad && compacted) }'; then
        echo "verify: churn workload had writes refused (or never compacted)" >&2
        exit 1
    fi

    # The conservation column gates the metric plane: every cores-sweep
    # row's final telemetry snapshot must balance its read/write/ack/flush
    # laws ("ok", never "N VIOLATED").
    if ! echo "$out" | sed -n '/E15 \/ store scaling/,/^$/p' \
        | awk '/^(4|16|64|128) /{ rows++; if ($NF != "ok") bad=1 } END { exit !(rows > 0 && !bad) }'; then
        echo "verify: an E15 telemetry snapshot violated its conservation laws" >&2
        exit 1
    fi

    # -json must have produced a parseable artifact with rows in it.
    test -s BENCH_E15.json || {
        echo "verify: BENCH_E15.json missing or empty" >&2
        exit 1
    }
    grep -q '"rows"' BENCH_E15.json || {
        echo "verify: BENCH_E15.json has no rows" >&2
        exit 1
    }
    # ...and the embedded telemetry snapshot (full per-service metric
    # state, the CI artifact's machine-readable core).
    grep -q '"telemetry"' BENCH_E15.json || {
        echo "verify: BENCH_E15.json has no embedded telemetry snapshot" >&2
        exit 1
    }

    echo "== E16 replication smoke (quick, -json)"
    out=$(go run ./cmd/chanos-bench -run E16 -quick -json)
    echo "$out"
    echo "$out" | grep -q "E16 / replication cost" || {
        echo "verify: E16 table missing" >&2
        exit 1
    }
    # The survival table is the machine-loss durability gate: every
    # seeded primary-kill row must have tracked acked PUTs and a "lost"
    # column of exactly 0.
    kills=$(echo "$out" | sed -n '/E16b \/ acked-write survival/,/^$/p')
    [ -n "$kills" ] || {
        echo "verify: E16b survival table missing" >&2
        exit 1
    }
    if ! echo "$kills" | awk '/^[0-9]/{ rows++; if ($3+0 == 0) bad=1; if ($6 != "0") bad=1 }
        END { exit !(rows > 0 && !bad) }'; then
        echo "verify: a seeded primary kill lost acked writes (or tracked none)" >&2
        exit 1
    fi
    test -s BENCH_E16.json || {
        echo "verify: BENCH_E16.json missing or empty" >&2
        exit 1
    }
    grep -q '"rows"' BENCH_E16.json || {
        echo "verify: BENCH_E16.json has no rows" >&2
        exit 1
    }

    echo "== E17 heal smoke (quick, -json)"
    out=$(go run ./cmd/chanos-bench -run E17 -quick -json)
    echo "$out"
    # The heal table is the lifecycle gate: every kill -> failover ->
    # re-attach cycle must end back at quorum ("quorum" column yes) with
    # zero acked writes lost, and the runtime re-attach cycles must have
    # actually streamed a bootstrap image (sync records > 0).
    heals=$(echo "$out" | sed -n '/E17 \/ quorum healing/,/^$/p')
    [ -n "$heals" ] || {
        echo "verify: E17 heal table missing" >&2
        exit 1
    }
    if ! echo "$heals" | awk '/^[0-9]/{ rows++; if ($NF != "yes") bad=1; if ($(NF-1) != "0") bad=1;
        if ($2 == "runtime") { runtime++; if ($4+0 == 0) bad=1 } }
        END { exit !(rows >= 3 && runtime >= 2 && !bad) }'; then
        echo "verify: a heal cycle lost acked writes, never reached quorum, or never synced" >&2
        exit 1
    fi
    # The live-scrape table is the observability gate: every cycle's
    # wire STATS request must have returned a snapshot ("scraped" yes)
    # whose conservation laws hold (violations 0) — including the
    # runtime-attach cycles where the scrape lands mid-heal.
    scrapes=$(echo "$out" | sed -n '/E17c \/ live STATS scrape/,/^$/p')
    [ -n "$scrapes" ] || {
        echo "verify: E17c live-scrape table missing" >&2
        exit 1
    }
    if ! echo "$scrapes" | awk '/^[0-9]/{ rows++; if ($2 != "yes") bad=1; if ($5 != "0") bad=1 }
        END { exit !(rows >= 3 && !bad) }'; then
        echo "verify: a live STATS scrape failed or returned an unbalanced snapshot" >&2
        exit 1
    fi

    # The replica-read sweep must show the healed pair's second index
    # lifting GET throughput by at least 1.5x at fixed cores.
    reads=$(echo "$out" | sed -n '/E17b \/ replica reads/,/^$/p')
    [ -n "$reads" ] || {
        echo "verify: E17b replica-read table missing" >&2
        exit 1
    }
    if ! echo "$reads" | awk '/^replica-reads /{ if ($NF+0 >= 1.5) ok=1 } END { exit !ok }'; then
        echo "verify: replica reads lifted GET throughput by less than 1.5x" >&2
        exit 1
    fi
    test -s BENCH_E17.json || {
        echo "verify: BENCH_E17.json missing or empty" >&2
        exit 1
    }
    grep -q '"rows"' BENCH_E17.json || {
        echo "verify: BENCH_E17.json has no rows" >&2
        exit 1
    }
    grep -q '"telemetry"' BENCH_E17.json || {
        echo "verify: BENCH_E17.json has no embedded telemetry snapshot" >&2
        exit 1
    }

    echo "== E18 cluster smoke (quick, -json)"
    out=$(go run ./cmd/chanos-bench -run E18 -quick -json)
    echo "$out"
    # The phase table is the cluster gate: across baseline -> minority
    # replica kill -> live migration, the routed fleet may lose nothing
    # (lost, errs and audit-lost all 0 on every row), the kill row must
    # actually tolerate a replica loss, and the migration row must have
    # flipped the map to version 2.
    phases=$(echo "$out" | sed -n '/E18 \/ cluster fabric/,/^$/p')
    [ -n "$phases" ] || {
        echo "verify: E18 phase table missing" >&2
        exit 1
    }
    if ! echo "$phases" | awk '/^(baseline|minority-kill|migration) /{
        rows++; if ($6 != "0" || $7 != "0" || $11 != "0") bad=1
        if ($1 == "minority-kill" && $8+0 < 1) bad=1
        if ($1 == "migration" && $9 != "2") bad=1 }
        END { exit !(rows == 3 && !bad) }'; then
        echo "verify: the cluster lost requests or acked writes, never tolerated the kill, or never flipped the map" >&2
        exit 1
    fi
    test -s BENCH_E18.json || {
        echo "verify: BENCH_E18.json missing or empty" >&2
        exit 1
    }
    grep -q '"rows"' BENCH_E18.json || {
        echo "verify: BENCH_E18.json has no rows" >&2
        exit 1
    }
    grep -q '"telemetry"' BENCH_E18.json || {
        echo "verify: BENCH_E18.json has no embedded telemetry snapshot" >&2
        exit 1
    }

    echo "== cluster scenario gate (9 machines, one engine)"
    # chanos-sim's cluster scenario must serve its requests with nothing
    # lost — same seed, same config, one shared engine across 9 machines
    # (the dump → replay-to-event-N → byte-equal redump loop for this
    # scenario is gated by the internal/dump cluster test levels).
    out=$(go run ./cmd/chanos-sim -scenario cluster -machines 3 -rf 2 \
        -cores 8 -requests 200 -keys 120 -seed 9)
    echo "$out"
    echo "$out" | grep -Eq 'served (2[0-9][0-9])/200 requests .* 0 errors, 0 lost' || {
        echo "verify: the cluster scenario dropped requests" >&2
        exit 1
    }

    echo "== core-dump gate (inject disk write failure -> dump -> replay)"
    # A seeded kvload run with one injected log-device write failure must
    # fail-stop the shard and write a machine core dump...
    out=$(go run ./cmd/chanos-sim -scenario kvload -cores 8 -clients 8 \
        -requests 300 -keys 64 -logblocks 64 -seed 7 \
        -fail-writes 1 -dump-on-fail .)
    echo "$out"
    dumpfile=$(echo "$out" | sed -n 's/^dump written: //p')
    [ -n "$dumpfile" ] && [ -s "$dumpfile" ] || {
        echo "verify: injected write failure produced no core dump" >&2
        exit 1
    }
    # ...that passes structural validation...
    go run ./cmd/chanos-dump -validate "$dumpfile" || {
        echo "verify: core dump failed structural validation" >&2
        exit 1
    }
    # ...and time-travels: -replay rebuilds the world from the dump's
    # (seed, config) and must halt at exactly the recorded event count,
    # with the halted machine state matching the dump (the -redump file
    # is byte-compared structurally by chanos-dump -diff).
    rout=$(go run ./cmd/chanos-sim -replay "$dumpfile" -redump DUMP_GATE2.dump.json)
    echo "$rout"
    echo "$rout" | grep -Eq 'halted at event ([0-9]+) \(recorded \1\)' || {
        echo "verify: replay did not halt at the recorded event count" >&2
        exit 1
    }
    go run ./cmd/chanos-dump -diff "$dumpfile" DUMP_GATE2.dump.json || {
        echo "verify: replayed machine state diverges from the dump" >&2
        exit 1
    }
    rm -f "$dumpfile" DUMP_GATE2.dump.json

    echo "== chaos matrix gate (seeded fault schedules, four invariants)"
    # A quick sweep of seeded schedules — kills, disk write failures,
    # wire loss, NIC slowdowns, migrations — fanned across the scenario
    # matrix must come back all green on the four invariants (zero
    # acked-write loss, no client hang, bounded staleness, fail-stop-
    # or-heal). A red exits non-zero and fails the gate; the summary
    # JSON is the CI artifact.
    out=$(go run ./cmd/chanos-sim -chaos-seeds 20 \
        -chaos-out CHAOS_MATRIX.json -dump-on-fail .)
    echo "$out"
    test -s CHAOS_MATRIX.json || {
        echo "verify: CHAOS_MATRIX.json missing or empty" >&2
        exit 1
    }
    grep -q '"rows"' CHAOS_MATRIX.json || {
        echo "verify: CHAOS_MATRIX.json has no rows" >&2
        exit 1
    }

    # ...and the matrix must be able to CATCH a red: a deliberately
    # unsound schedule (silent index bitrot late in the run) must trip
    # the acked-loss invariant, write a machine dump, and that dump's
    # replay must halt at the exact recorded event with byte-equal
    # state — the whole red -> dump -> one-command repro loop.
    if out=$(go run ./cmd/chanos-sim -chaos-schedule "cy:4000000:bitrot:0:3" \
        -seed 7 -shards 2 -clients 12 -requests 240 -readpct 60 \
        -keys 96 -logblocks 64 -dump-on-fail .); then
        echo "verify: the deliberately red bitrot schedule came back green" >&2
        exit 1
    fi
    echo "$out"
    echo "$out" | grep -q 'RED: violations \[acked-loss\]' || {
        echo "verify: the bitrot red named the wrong invariant" >&2
        exit 1
    }
    dumpfile=$(echo "$out" | sed -n 's/^  dump: //p')
    [ -n "$dumpfile" ] && [ -s "$dumpfile" ] || {
        echo "verify: the red chaos run wrote no dump" >&2
        exit 1
    }
    rout=$(go run ./cmd/chanos-sim -replay "$dumpfile")
    echo "$rout"
    echo "$rout" | grep -Eq 'halted at event ([0-9]+) \(recorded \1\)' || {
        echo "verify: chaos replay did not halt at the recorded event count" >&2
        exit 1
    }
    echo "$rout" | grep -q 'matches the dump exactly' || {
        echo "verify: replayed chaos machine state diverges from the dump" >&2
        exit 1
    }
    rm -f "$dumpfile"
fi

echo "verify: OK"
