#!/usr/bin/env bash
# verify.sh — the repo's tier-1 gate plus a quick experiment smoke.
#
# Usage: scripts/verify.sh [-short]
#   -short   skip the E14 smoke (build/vet/test only)
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
[ "${1:-}" = "-short" ] && short=1

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt check"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go test ./..."
go test ./...

if [ "$short" = "0" ]; then
    echo "== E14 netstack smoke (quick)"
    out=$(go run ./cmd/chanos-bench -run E14 -quick)
    echo "$out"
    # The table must exist and must not report a dead netstack: every
    # conns/sec cell being 0.00 means the stack served nothing.
    echo "$out" | grep -q "E14 / netstack scaling" || {
        echo "verify: E14 table missing" >&2
        exit 1
    }
    if ! echo "$out" | awk '/^(4|16|64|256) /{ if ($3 != "0.00") ok=1 } END { exit !ok }'; then
        echo "verify: netstack served zero connections in every configuration" >&2
        exit 1
    fi
fi

echo "verify: OK"
