// Command chanos-bench regenerates the experiment tables and figure
// series described in EXPERIMENTS.md.
//
// Usage:
//
//	chanos-bench -list
//	chanos-bench -run E1 [-seed 7] [-quick] [-csv]
//	chanos-bench [-quick]    (full suite)
package main

import (
	"flag"
	"fmt"
	"os"

	"chanos/internal/exp"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments")
		runID = flag.String("run", "", "run one experiment by id (E1..E14, A1..A4)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sweeps and windows")
		seed  = flag.Uint64("seed", 42, "simulation seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chanos-bench: unexpected argument %q (did you mean -run %s?)\n",
			flag.Arg(0), flag.Arg(0))
		os.Exit(2)
	}

	o := exp.Options{Seed: *seed, Quick: *quick}

	switch {
	case *list:
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
	case *runID != "":
		e, ok := exp.Find(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "chanos-bench: unknown experiment %q (try -list)\n", *runID)
			os.Exit(1)
		}
		emit(e, o, *csv)
	case *all:
		fallthrough
	default:
		// -all, or bare invocation (with or without -quick/-seed): the
		// full suite.
		for _, e := range exp.All() {
			emit(e, o, *csv)
		}
	}
}

func emit(e exp.Experiment, o exp.Options, csv bool) {
	fmt.Printf("# %s — %s\n", e.ID, e.Title)
	for _, tb := range e.Run(o) {
		if csv {
			tb.CSV(os.Stdout)
			fmt.Println()
		} else {
			tb.Fprint(os.Stdout)
		}
	}
}
