// Command chanos-bench regenerates the experiment tables and figure
// series described in EXPERIMENTS.md.
//
// Usage:
//
//	chanos-bench -list
//	chanos-bench -run E1 [-seed 7] [-quick] [-csv] [-json]
//	chanos-bench [-quick]    (full suite)
//
// -json additionally writes each experiment's tables to BENCH_<id>.json
// (machine-readable, for CI artifacts and plotting).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chanos/internal/exp"
	"chanos/internal/stats"
	"chanos/internal/telemetry"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments")
		runID   = flag.String("run", "", "run one experiment by id (E1..E17, A1..A4)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "reduced sweeps and windows")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = flag.Bool("json", false, "also write BENCH_<id>.json per experiment")
		dumpDir = flag.String("dump-on-fail", "", "write a machine core dump into this directory if an experiment's invariant gate fails")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chanos-bench: unexpected argument %q (did you mean -run %s?)\n",
			flag.Arg(0), flag.Arg(0))
		os.Exit(2)
	}

	o := exp.Options{Seed: *seed, Quick: *quick, DumpDir: *dumpDir}

	switch {
	case *list:
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
	case *runID != "":
		e, ok := exp.Find(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "chanos-bench: unknown experiment %q (try -list)\n", *runID)
			os.Exit(1)
		}
		emit(e, o, *csv, *jsonOut)
	case *all:
		fallthrough
	default:
		// -all, or bare invocation (with or without -quick/-seed): the
		// full suite.
		for _, e := range exp.All() {
			emit(e, o, *csv, *jsonOut)
		}
	}
}

func emit(e exp.Experiment, o exp.Options, csv, jsonOut bool) {
	fmt.Printf("# %s — %s\n", e.ID, e.Title)
	// Instrumented experiments hand over telemetry snapshots as they run;
	// the last one — the final state of the last world measured — rides
	// along in the JSON artifact.
	var snap *telemetry.Snapshot
	o.SnapshotSink = func(s *telemetry.Snapshot) { snap = s }
	tables := e.Run(o)
	for _, tb := range tables {
		if csv {
			tb.CSV(os.Stdout)
			fmt.Println()
		} else {
			tb.Fprint(os.Stdout)
		}
	}
	if jsonOut {
		writeJSON(e, o, tables, snap)
	}
}

// benchJSON is the stable machine-readable schema behind -json.
type benchJSON struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Seed   uint64      `json:"seed"`
	Quick  bool        `json:"quick"`
	Tables []tableJSON `json:"tables"`
	// Telemetry is the final telemetry snapshot of the experiment's last
	// measured world (present for instrumented experiments): the full
	// per-service metric state behind the table cells.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

type tableJSON struct {
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
}

func writeJSON(e exp.Experiment, o exp.Options, tables []*stats.Table, snap *telemetry.Snapshot) {
	out := benchJSON{ID: e.ID, Title: e.Title, Seed: o.Seed, Quick: o.Quick, Telemetry: snap}
	for _, tb := range tables {
		out.Tables = append(out.Tables, tableJSON{
			Title: tb.Title, Cols: tb.Cols, Rows: tb.Rows, Notes: tb.Notes,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-bench: marshal %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	name := fmt.Sprintf("BENCH_%s.json", e.ID)
	if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "chanos-bench: write %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", name)
}
