// The chaos verbs: -chaos-schedule runs one fault schedule against the
// selected scenario and judges it on the four invariants; -chaos-seeds
// fans N seeded schedules across the standard scenario matrix and
// prints the pass/fail fold (optionally writing the matrix summary
// JSON, the CI artifact). Red runs print their (seed, config,
// event-count) repro triple and the one-command replay line, and exit
// non-zero.
package main

import (
	"fmt"
	"os"

	"chanos/internal/chaos"
	"chanos/internal/dump"
)

// runChaosSchedule runs one explicit schedule (or, with spec "gen", a
// generated one) against the scenario cfg selects.
func runChaosSchedule(spec string, cfg dump.Config, seed uint64, dumpDir string) int {
	var sched chaos.Schedule
	if spec != "gen" {
		var err error
		if sched, err = chaos.Parse(spec); err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			return 2
		}
	}
	label := "kvload"
	if cfg.Machines > 0 {
		label = fmt.Sprintf("cluster%d", cfg.Machines)
	} else if cfg.Replicas > 0 {
		label = "repl"
	}
	r, err := chaos.Run(chaos.Spec{Label: label, Seed: seed, Cfg: cfg,
		Sched: sched, DumpDir: dumpDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return 2
	}
	fmt.Printf("chaos: %s seed=%d schedule=%q\n", label, seed, r.Schedule)
	fmt.Printf("  %d counted events, %d cycles, lifecycles %v, %d/%d clauses fired, %d keys audited\n",
		r.EventCount, r.EndCycles, r.Lifecycles, len(r.FiredClauses), len(mustParse(r.Schedule)), r.AuditKeys)
	if !r.Red() {
		fmt.Println("  GREEN: all four invariants hold")
		return 0
	}
	fmt.Printf("  RED: violations %v\n", r.Violations)
	for _, d := range r.Details {
		fmt.Printf("    %s\n", d)
	}
	if r.DumpPath != "" {
		fmt.Printf("  dump: %s\n", r.DumpPath)
		fmt.Printf("  repro: %s\n", r.ReplayCmd)
	}
	return 1
}

// runChaosSweep fans n seeded schedules across the standard matrix
// (row seed counts scale proportionally from the full tier's 100) and
// writes the summary JSON when outPath is set.
func runChaosSweep(n int, seed uint64, dumpDir, outPath string) int {
	full := chaos.DefaultRows(false)
	var total int
	for _, r := range full {
		total += r.Seeds
	}
	rows := make([]chaos.RowSpec, 0, len(full))
	for _, r := range full {
		r.Seeds = r.Seeds * n / total
		if r.Seeds < 1 {
			r.Seeds = 1
		}
		rows = append(rows, r)
	}
	m, err := chaos.Sweep(rows, seed*0x10_0001, dumpDir, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return 2
	}
	fmt.Printf("chaos matrix: %d/%d green", m.Runs-m.Red, m.Runs)
	if m.Red > 0 {
		fmt.Printf(" — %d RED (by invariant: %v)", m.Red, m.ByInvariant)
	}
	fmt.Println()
	if outPath != "" {
		if err := os.WriteFile(outPath, m.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			return 2
		}
		fmt.Printf("  matrix summary: %s\n", outPath)
	}
	if m.Red > 0 {
		return 1
	}
	return 0
}

// replayChaos replays a dump that carries a fault schedule: the chaos
// harness re-arms the identical timeline and halts at the recorded
// event, then the replayed machine state is diffed against the dump.
func replayChaos(d *dump.Dump) int {
	rr, err := chaos.Replay(d)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return 1
	}
	defer rr.Close()
	fmt.Printf("replay: halted at event %d (recorded %d), cycle %d, schedule %q\n",
		rr.EventCount, d.EventCount, rr.EndCycles, d.Config.Chaos)
	rd, err := rr.Snapshot(d.Reason)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return 1
	}
	if dump.Equal(d, rd) {
		fmt.Println("replay: machine state matches the dump exactly")
		return 0
	}
	fmt.Println("replay: MACHINE STATE DIVERGES from the dump:")
	for _, line := range dump.Diff(d, rd) {
		fmt.Printf("  %s\n", line)
	}
	return 1
}

// mustParse re-parses a schedule the harness already round-tripped.
func mustParse(spec string) chaos.Schedule {
	s, _ := chaos.Parse(spec)
	return s
}
