// Command chanos-sim boots a simulated machine with a chanOS kernel and a
// message-passing file system, runs a mixed workload scenario, and prints
// a machine/trace summary: per-subsystem operation counts, core
// utilisation, cache behaviour and runtime statistics.
//
// With -scenario kvload it instead boots the replayable KV vertical
// (the same world examples/kvserver serves), optionally with injected
// log-device write failures; -dump-on-fail writes a machine core dump
// on any shard fail-stop. With -replay it time-travels: rebuild the
// dumped world from its recorded (seed, config) and halt the engine
// just before the failing instant, at the dump's exact event count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"chanos/internal/blockdev"
	"chanos/internal/core"
	"chanos/internal/dump"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/sched"
	"chanos/internal/sim"
	"chanos/internal/telemetry"
	"chanos/internal/trace"
	"chanos/internal/vfs"
	"chanos/internal/workload"
)

func main() {
	var (
		cores     = flag.Int("cores", 64, "number of cores")
		clients   = flag.Int("clients", 16, "workload client threads")
		seconds   = flag.Float64("seconds", 0.005, "simulated seconds to run")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		policy    = flag.String("sched", "locality", "placement policy: rr|random|least|locality|steal")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON timeline here")

		scenario   = flag.String("scenario", "", "named scenario: kvload, cluster (default: the VFS metadata workload)")
		machines   = flag.Int("machines", 0, "cluster: serving nodes (0 = default)")
		rf         = flag.Int("rf", 0, "cluster: replica machines per node")
		shards     = flag.Int("shards", 0, "kvload: store shards (0 = default)")
		requests   = flag.Int("requests", 0, "kvload: client requests to serve (0 = default)")
		readPct    = flag.Int("readpct", 0, "kvload: GET share 0-100 (0 = default)")
		keys       = flag.Int("keys", 0, "kvload: keyspace size (0 = default)")
		logBlocks  = flag.Int("logblocks", 0, "kvload: per-shard log-region blocks (0 = default)")
		replicas   = flag.Int("replicas", 0, "kvload: replica machines (0 or 1)")
		loss       = flag.Float64("loss", 0, "kvload: wire packet loss probability")
		failWrites = flag.Int("fail-writes", 0, "kvload: fail the next N log-device write completions after prefill")
		failShard  = flag.Int("fail-shard", 0, "kvload: which shard's device the injected failures hit")
		dumpOnFail = flag.String("dump-on-fail", "", "kvload: write a machine core dump into this directory on any shard fail-stop")
		replay     = flag.String("replay", "", "replay a machine core dump: rebuild its world and halt at the recorded event count")
		redump     = flag.String("redump", "", "with -replay: re-dump the halted machine to this path (differential check)")

		chaosSchedule = flag.String("chaos-schedule", "", "run one chaos fault schedule against the selected scenario (\"gen\" = derive one from the seed); red exits 1")
		chaosSeeds    = flag.Int("chaos-seeds", 0, "fan N seeded chaos schedules across the scenario matrix; any red exits 1")
		chaosOut      = flag.String("chaos-out", "", "with -chaos-seeds: write the matrix summary JSON here")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(replayDump(*replay, *redump))
	}
	if *chaosSeeds > 0 {
		os.Exit(runChaosSweep(*chaosSeeds, *seed, *dumpOnFail, *chaosOut))
	}
	if *chaosSchedule != "" {
		m := *machines
		if *scenario == dump.ScenarioCluster && m == 0 {
			m = 3
		}
		os.Exit(runChaosSchedule(*chaosSchedule, dump.Config{
			Cores: *cores, Shards: *shards, Clients: *clients,
			Requests: *requests, ReadPct: *readPct, Keys: *keys,
			LogBlocks: *logBlocks, Replicas: *replicas, Loss: *loss,
			Machines: m, RF: *rf,
		}, *seed, *dumpOnFail))
	}
	if *scenario != "" {
		os.Exit(runScenario(*scenario, dump.Config{
			Cores: *cores, Shards: *shards, Clients: *clients,
			Requests: *requests, ReadPct: *readPct, Keys: *keys,
			LogBlocks: *logBlocks, Replicas: *replicas, Loss: *loss,
			FailWrites: *failWrites, FailShard: *failShard,
			Machines: *machines, RF: *rf,
		}, *seed, *dumpOnFail))
	}

	var s core.Scheduler
	switch *policy {
	case "rr":
		s = &sched.RoundRobin{}
	case "random":
		s = sched.NewRandom(*seed)
	case "least":
		s = &sched.LeastLoaded{}
	case "locality":
		s = &sched.Locality{}
	case "steal":
		s = sched.NewWorkStealing(*seed)
	default:
		fmt.Fprintf(os.Stderr, "chanos-sim: unknown scheduler %q\n", *policy)
		os.Exit(1)
	}

	eng := sim.NewEngine()
	m := machine.New(eng, machine.DefaultParams(*cores))
	var collector *trace.Collector
	cfg := core.Config{Seed: *seed, Sched: s}
	if *traceFile != "" {
		collector = trace.New(m.P.CyclesPerSec)
		cfg.Tracer = collector
	}
	rt := core.NewRuntime(m, cfg)
	defer rt.Shutdown()

	k := kernel.New(rt, kernel.Config{KernelCoreFraction: 0.25})
	k.Register("time", 1, func(t *core.Thread, req kernel.Request) core.Msg {
		return t.Now()
	})

	disk := blockdev.NewDisk(rt, blockdev.DefaultDiskParams(16384))
	drv := blockdev.NewDriver(rt, disk, 128, k.KernelCores()[0])

	fsReady := rt.NewChan("fs.ready", 1)
	rt.Boot("boot", func(t *core.Thread) {
		sb, err := vfs.Format(t, drv, 16384, 4096)
		if err != nil {
			panic(err)
		}
		fs := vfs.NewMsgFS(rt, drv, sb, vfs.MsgFSConfig{CacheBlocks: 2048})
		for d := 0; d < 8; d++ {
			dir := fmt.Sprintf("/srv%d", d)
			if _, err := fs.Mkdir(t, dir); err != nil {
				panic(err)
			}
			for f := 0; f < 8; f++ {
				p := fmt.Sprintf("%s/obj%d", dir, f)
				if _, err := fs.Create(t, p); err != nil {
					panic(err)
				}
			}
		}
		fsReady.Send(t, fs)
	})
	// Drain the boot/format phase before the measured window starts.
	rt.Run()

	counts := make([]uint64, *clients)
	rt.Boot("workload", func(t *core.Thread) {
		v, _ := fsReady.Recv(t)
		fs := v.(vfs.FS)
		for i := 0; i < *clients; i++ {
			i := i
			rng := sim.NewRNG(*seed + uint64(i)*131)
			mix := workload.MetadataMix()
			t.Spawn(fmt.Sprintf("client.%d", i), func(ct *core.Thread) {
				for {
					d := rng.Intn(8)
					f := rng.Intn(8)
					p := fmt.Sprintf("/srv%d/obj%d", d, f)
					switch mix.Name(mix.Pick(rng)) {
					case "lookup":
						fs.Lookup(ct, p)
					case "stat":
						fs.Stat(ct, p)
					case "read":
						fs.Read(ct, p, 0, 64)
					case "write":
						fs.Write(ct, p, 0, []byte("data"))
					case "create":
						fs.Create(ct, fmt.Sprintf("/srv%d/new%d_%d", d, i, counts[i]))
					}
					k.Call(ct, "time", i, "now", nil)
					counts[i]++
					ct.Compute(1000)
				}
			})
		}
	})

	// With tracing on, statd sweeps the scheduler and emits per-core
	// run-queue depth and busy-permille counter series into the same
	// timeline — Perfetto shows load imbalance alongside the run
	// segments. The sweep is engine-context and costs the simulated
	// machine nothing, so the trace stays behaviour-neutral. Started
	// only now: its perpetual re-arm would keep the boot-phase Run()
	// (which drains to quiescence) from ever returning.
	if collector != nil {
		sd := telemetry.NewStatd(eng)
		sd.Tracer = collector
		sd.Register("sched", telemetry.NewSchedSource(rt, func(c int) uint64 {
			return uint64(m.Core(c).Utilization(eng.Now()) * 1000)
		}))
		sd.Start()
	}

	window := m.Cycles(*seconds)
	rt.RunFor(window)

	var totalOps uint64
	for _, c := range counts {
		totalOps += c
	}
	st := rt.Stats()
	fmt.Printf("chanos-sim: %d cores, %d clients, %.4f simulated seconds (%d cycles)\n",
		*cores, *clients, *seconds, window)
	fmt.Printf("  fs+kernel ops     %d (%.0f ops/sec)\n", totalOps, float64(totalOps)/(*seconds))
	fmt.Printf("  threads spawned   %d (alive %d)\n", st.Spawns, rt.Alive())
	fmt.Printf("  messages sent     %d (%.1f per op)\n", st.Sends, float64(st.Sends)/float64(totalOps))
	fmt.Printf("  bytes on wire     %d\n", st.BytesSent)
	fmt.Printf("  rendezvous        %d\n", st.Rendezvous)
	fmt.Printf("  context switches  %d\n", st.Switches)
	fmt.Printf("  disk reads/writes %d/%d, hazards %d\n", disk.Reads, disk.Writes, disk.Hazards)

	// Core utilisation: min / median / max.
	utils := make([]float64, *cores)
	for i := 0; i < *cores; i++ {
		utils[i] = m.Core(i).Utilization(eng.Now())
	}
	sort.Float64s(utils)
	fmt.Printf("  core utilisation  min %.1f%%  median %.1f%%  max %.1f%%\n",
		utils[0]*100, utils[*cores/2]*100, utils[*cores-1]*100)

	if collector != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			os.Exit(1)
		}
		if err := collector.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: writing trace: %v\n", err)
		}
		f.Close()
		fmt.Printf("  trace             %s (%d events, %d dropped)\n",
			*traceFile, collector.Len(), collector.Dropped)
	}
}

// runScenario boots and drives a named replayable scenario.
func runScenario(name string, cfg dump.Config, seed uint64, dumpDir string) int {
	if name == dump.ScenarioCluster {
		return runClusterScenario(cfg, seed, dumpDir)
	}
	if name != dump.ScenarioKVLoad {
		fmt.Fprintf(os.Stderr, "chanos-sim: unknown scenario %q (have: kvload, cluster)\n", name)
		return 2
	}
	cfg.Scenario = name
	w := dump.Build(seed, cfg)
	defer w.Close()
	if dumpDir != "" {
		w.C.OnFailStop(func(d *dump.Dump) { writeDump(dumpDir, d, w) })
	}
	cfg = w.Config()
	fmt.Printf("chanos-sim: scenario kvload, %d cores, %d store shards, %d clients, %d keys, %d%% reads, seed %d\n",
		cfg.Cores, w.KV.Shards(), cfg.Clients, cfg.Keys, cfg.ReadPct, seed)
	if cfg.FailWrites > 0 {
		fmt.Printf("  fault: next %d write completions on shard %d's log device will fail\n",
			cfg.FailWrites, cfg.FailShard)
	}
	r := w.Run()
	fmt.Printf("  served %d/%d requests over %d connections (%d errors, %d not-found) in %.2f simulated ms\n",
		r.Responses, cfg.Requests, r.Completed, r.Errs, r.NotFound,
		w.Sys.Seconds(w.Sys.Now())*1e3)
	fmt.Printf("  engine: %d counted events, store state %s\n", w.Sys.Eng.Fired(), w.KV.Lifecycle())
	if r.Stalled {
		fmt.Println("  stalled: the fleet stopped making progress")
	}
	for _, b := range r.ConservationBad {
		fmt.Printf("  CONSERVATION VIOLATED: %s\n", b)
	}
	if cfg.FailWrites > 0 && dumpDir != "" && !w.C.Dumped() {
		fmt.Fprintln(os.Stderr, "chanos-sim: injected fault never tripped a fail-stop")
		return 1
	}
	return 0
}

// runClusterScenario boots and drives the N-machine cluster scenario.
func runClusterScenario(cfg dump.Config, seed uint64, dumpDir string) int {
	w := dump.BuildCluster(seed, cfg)
	defer w.Close()
	if dumpDir != "" {
		w.C.OnFailStop(func(d *dump.Dump) {
			path := filepath.Join(dumpDir, d.FileName())
			if err := dump.WriteFile(path, d, nil); err != nil {
				fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
				return
			}
			fmt.Printf("dump written: %s\n", path)
			fmt.Printf("  reason: %s\n", d.Reason)
			fmt.Printf("  replay: %s\n", dump.ReplayCommand(path))
		})
	}
	cfg = w.Config()
	fmt.Printf("chanos-sim: scenario cluster, %d nodes x (1 primary + %d replicas), %d cores each, %d clients, %d keys, %d%% reads, seed %d\n",
		cfg.Machines, cfg.RF, cfg.Cores, cfg.Clients, cfg.Keys, cfg.ReadPct, seed)
	r := w.Run()
	fmt.Printf("  served %d/%d requests (%d redirects followed, %d errors, %d lost) in %.2f simulated ms\n",
		r.Responses, cfg.Requests, w.Pool.Moved, r.Errs, w.Pool.Lost,
		w.Cl.Nodes[0].M.Seconds(w.Cl.Eng.Now())*1e3)
	fmt.Printf("  engine: %d counted events across %d machines\n",
		w.Cl.Eng.Fired(), cfg.Machines*(1+cfg.RF))
	if r.Stalled {
		fmt.Println("  stalled: the fleet stopped making progress")
	}
	for _, b := range r.ConservationBad {
		fmt.Printf("  CONSERVATION VIOLATED: %s\n", b)
	}
	return 0
}

// writeDump persists a core dump and prints the one-command replay line.
func writeDump(dir string, d *dump.Dump, w *dump.World) {
	path := filepath.Join(dir, d.FileName())
	if err := dump.WriteFile(path, d, w.KV); err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return
	}
	fmt.Printf("dump written: %s\n", path)
	fmt.Printf("  reason: %s\n", d.Reason)
	fmt.Printf("  replay: %s\n", dump.ReplayCommand(path))
}

// replayDump rebuilds a dumped machine and halts it at the dump's
// recorded event count — the state just before the failing instant.
func replayDump(path, redumpPath string) int {
	d, err := dump.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
		return 1
	}
	if bad := d.Validate(); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "chanos-sim: %s is not a valid dump:\n", path)
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		return 1
	}
	fmt.Printf("replay: scenario %s, seed %d, target event %d (%q)\n",
		d.Config.Scenario, d.Seed, d.EventCount, d.Reason)
	if d.Config.Chaos != "" {
		// The dump's event sequence includes a fault schedule; the chaos
		// harness re-arms it and re-runs the identical phases.
		return replayChaos(d)
	}
	var c *dump.Collector
	if d.Config.Scenario == dump.ScenarioCluster {
		w, _, err := dump.ReplayCluster(d)
		if w != nil {
			defer w.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			return 1
		}
		c = w.C
		fmt.Printf("replay: halted at event %d (recorded %d), cycle %d (%.3f simulated ms), %d machines\n",
			c.Eng.Fired(), d.EventCount, c.Eng.Now(),
			w.Cl.Nodes[0].M.Seconds(c.Eng.Now())*1e3, len(d.Machines)*(1+d.Config.RF))
	} else {
		w, _, err := dump.Replay(d)
		if w != nil {
			defer w.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			return 1
		}
		c = w.C
		fmt.Printf("replay: halted at event %d (recorded %d), cycle %d (%.3f simulated ms)\n",
			w.Sys.Eng.Fired(), d.EventCount, w.Sys.Now(), w.Sys.Seconds(w.Sys.Now())*1e3)
	}
	rd := c.Snapshot(d.Reason)
	if dump.Equal(d, rd) {
		fmt.Println("replay: machine state matches the dump exactly")
	} else {
		fmt.Println("replay: MACHINE STATE DIVERGES from the dump:")
		for _, line := range dump.Diff(d, rd) {
			fmt.Printf("  %s\n", line)
		}
		return 1
	}
	if redumpPath != "" {
		if err := dump.WriteFile(redumpPath, rd, nil); err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			return 1
		}
		fmt.Printf("re-dump written: %s\n", redumpPath)
	}
	return 0
}
