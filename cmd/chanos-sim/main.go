// Command chanos-sim boots a simulated machine with a chanOS kernel and a
// message-passing file system, runs a mixed workload scenario, and prints
// a machine/trace summary: per-subsystem operation counts, core
// utilisation, cache behaviour and runtime statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chanos/internal/blockdev"
	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/sched"
	"chanos/internal/sim"
	"chanos/internal/telemetry"
	"chanos/internal/trace"
	"chanos/internal/vfs"
	"chanos/internal/workload"
)

func main() {
	var (
		cores     = flag.Int("cores", 64, "number of cores")
		clients   = flag.Int("clients", 16, "workload client threads")
		seconds   = flag.Float64("seconds", 0.005, "simulated seconds to run")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		policy    = flag.String("sched", "locality", "placement policy: rr|random|least|locality|steal")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON timeline here")
	)
	flag.Parse()

	var s core.Scheduler
	switch *policy {
	case "rr":
		s = &sched.RoundRobin{}
	case "random":
		s = sched.NewRandom(*seed)
	case "least":
		s = &sched.LeastLoaded{}
	case "locality":
		s = &sched.Locality{}
	case "steal":
		s = sched.NewWorkStealing(*seed)
	default:
		fmt.Fprintf(os.Stderr, "chanos-sim: unknown scheduler %q\n", *policy)
		os.Exit(1)
	}

	eng := sim.NewEngine()
	m := machine.New(eng, machine.DefaultParams(*cores))
	var collector *trace.Collector
	cfg := core.Config{Seed: *seed, Sched: s}
	if *traceFile != "" {
		collector = trace.New(m.P.CyclesPerSec)
		cfg.Tracer = collector
	}
	rt := core.NewRuntime(m, cfg)
	defer rt.Shutdown()

	k := kernel.New(rt, kernel.Config{KernelCoreFraction: 0.25})
	k.Register("time", 1, func(t *core.Thread, req kernel.Request) core.Msg {
		return t.Now()
	})

	disk := blockdev.NewDisk(rt, blockdev.DefaultDiskParams(16384))
	drv := blockdev.NewDriver(rt, disk, 128, k.KernelCores()[0])

	fsReady := rt.NewChan("fs.ready", 1)
	rt.Boot("boot", func(t *core.Thread) {
		sb, err := vfs.Format(t, drv, 16384, 4096)
		if err != nil {
			panic(err)
		}
		fs := vfs.NewMsgFS(rt, drv, sb, vfs.MsgFSConfig{CacheBlocks: 2048})
		for d := 0; d < 8; d++ {
			dir := fmt.Sprintf("/srv%d", d)
			if _, err := fs.Mkdir(t, dir); err != nil {
				panic(err)
			}
			for f := 0; f < 8; f++ {
				p := fmt.Sprintf("%s/obj%d", dir, f)
				if _, err := fs.Create(t, p); err != nil {
					panic(err)
				}
			}
		}
		fsReady.Send(t, fs)
	})
	// Drain the boot/format phase before the measured window starts.
	rt.Run()

	counts := make([]uint64, *clients)
	rt.Boot("workload", func(t *core.Thread) {
		v, _ := fsReady.Recv(t)
		fs := v.(vfs.FS)
		for i := 0; i < *clients; i++ {
			i := i
			rng := sim.NewRNG(*seed + uint64(i)*131)
			mix := workload.MetadataMix()
			t.Spawn(fmt.Sprintf("client.%d", i), func(ct *core.Thread) {
				for {
					d := rng.Intn(8)
					f := rng.Intn(8)
					p := fmt.Sprintf("/srv%d/obj%d", d, f)
					switch mix.Name(mix.Pick(rng)) {
					case "lookup":
						fs.Lookup(ct, p)
					case "stat":
						fs.Stat(ct, p)
					case "read":
						fs.Read(ct, p, 0, 64)
					case "write":
						fs.Write(ct, p, 0, []byte("data"))
					case "create":
						fs.Create(ct, fmt.Sprintf("/srv%d/new%d_%d", d, i, counts[i]))
					}
					k.Call(ct, "time", i, "now", nil)
					counts[i]++
					ct.Compute(1000)
				}
			})
		}
	})

	// With tracing on, statd sweeps the scheduler and emits per-core
	// run-queue depth and busy-permille counter series into the same
	// timeline — Perfetto shows load imbalance alongside the run
	// segments. The sweep is engine-context and costs the simulated
	// machine nothing, so the trace stays behaviour-neutral. Started
	// only now: its perpetual re-arm would keep the boot-phase Run()
	// (which drains to quiescence) from ever returning.
	if collector != nil {
		sd := telemetry.NewStatd(eng)
		sd.Tracer = collector
		sd.Register("sched", telemetry.NewSchedSource(rt, func(c int) uint64 {
			return uint64(m.Core(c).Utilization(eng.Now()) * 1000)
		}))
		sd.Start()
	}

	window := m.Cycles(*seconds)
	rt.RunFor(window)

	var totalOps uint64
	for _, c := range counts {
		totalOps += c
	}
	st := rt.Stats()
	fmt.Printf("chanos-sim: %d cores, %d clients, %.4f simulated seconds (%d cycles)\n",
		*cores, *clients, *seconds, window)
	fmt.Printf("  fs+kernel ops     %d (%.0f ops/sec)\n", totalOps, float64(totalOps)/(*seconds))
	fmt.Printf("  threads spawned   %d (alive %d)\n", st.Spawns, rt.Alive())
	fmt.Printf("  messages sent     %d (%.1f per op)\n", st.Sends, float64(st.Sends)/float64(totalOps))
	fmt.Printf("  bytes on wire     %d\n", st.BytesSent)
	fmt.Printf("  rendezvous        %d\n", st.Rendezvous)
	fmt.Printf("  context switches  %d\n", st.Switches)
	fmt.Printf("  disk reads/writes %d/%d, hazards %d\n", disk.Reads, disk.Writes, disk.Hazards)

	// Core utilisation: min / median / max.
	utils := make([]float64, *cores)
	for i := 0; i < *cores; i++ {
		utils[i] = m.Core(i).Utilization(eng.Now())
	}
	sort.Float64s(utils)
	fmt.Printf("  core utilisation  min %.1f%%  median %.1f%%  max %.1f%%\n",
		utils[0]*100, utils[*cores/2]*100, utils[*cores-1]*100)

	if collector != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: %v\n", err)
			os.Exit(1)
		}
		if err := collector.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "chanos-sim: writing trace: %v\n", err)
		}
		f.Close()
		fmt.Printf("  trace             %s (%d events, %d dropped)\n",
			*traceFile, collector.Len(), collector.Dropped)
	}
}
