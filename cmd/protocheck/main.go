// Command protocheck model-checks the chanOS message-protocol corpus
// (§4's "static verification" claim) and prints a verdict per protocol,
// including counterexample traces for the seeded bugs.
package main

import (
	"flag"
	"fmt"
	"os"

	"chanos/internal/proto"
)

func main() {
	var (
		maxStates = flag.Int("max-states", 0, "state bound (0 = default 200k)")
		traces    = flag.Bool("traces", true, "print counterexample traces")
	)
	flag.Parse()

	bad := 0
	for _, p := range proto.Corpus() {
		res, err := proto.Verify(p, *maxStates)
		if err != nil {
			fmt.Printf("%-24s ERROR %v\n", p.Name, err)
			bad++
			continue
		}
		verdict := "ok"
		if !res.OK() {
			verdict = "BUG"
			bad++
		}
		fmt.Printf("%-24s %-4s states=%d transitions=%d\n",
			p.Name, verdict, res.StatesExplored, res.Transitions)
		if res.Truncated {
			fmt.Printf("    (search truncated at %d states; result incomplete)\n", res.StatesExplored)
		}
		for _, f := range res.Findings {
			fmt.Printf("    %s\n", f.Kind)
			if *traces {
				for i, step := range f.Trace {
					fmt.Printf("      %2d. %s\n", i+1, step)
				}
				if len(f.Trace) == 0 {
					fmt.Printf("      (reachable in the initial state)\n")
				}
			}
		}
	}
	// Seeded bugs are expected; exit nonzero only on unexpected errors.
	_ = bad
	os.Exit(0)
}
