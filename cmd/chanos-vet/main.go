// chanos-vet runs the repo's custom static analyzers (internal/lint)
// over the module: the determinism and no-shared-memory contracts,
// compiler-enforced. It is the source-level complement to
// cmd/protocheck's protocol-state model checking — protocheck verifies
// the message protocols' state machines, chanos-vet verifies the Go
// code that implements them stays inside the paper's discipline.
//
// Usage:
//
//	chanos-vet [flags] [packages]
//
// With no package patterns it checks ./... from the current module.
// Exit status is 1 if any non-waived finding exists, 0 otherwise
// (unused waivers are reported but do not fail the run — they warn of
// waiver rot ahead of a future lint-budget gate).
//
// Flags:
//
//	-list    print the analyzer suite (name, scope, contract) and exit
//	-json    machine-readable output: findings, waiver inventory,
//	         unused waivers, counts — the scriptable half of the
//	         waiver budget
//	-C dir   run as if launched from dir (the module root)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"chanos/internal/lint"
)

func main() {
	var (
		listOnly = flag.Bool("list", false, "list the analyzer suite and exit")
		jsonOut  = flag.Bool("json", false, "emit findings and the waiver inventory as JSON")
		chdir    = flag.String("C", ".", "module directory to analyze")
	)
	flag.Parse()

	analyzers := lint.All()

	if *listOnly {
		if *jsonOut {
			type entry struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			}
			var es []entry
			for _, a := range analyzers {
				es = append(es, entry{a.Name, a.Doc})
			}
			emitJSON(map[string]any{"analyzers": es})
			return
		}
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-vet: %v\n", err)
		os.Exit(2)
	}
	res := lint.Run(pkgs, analyzers)

	live := res.Live()
	waived := res.Waived()
	unused := res.Unused()
	sortFindings(live)
	sortFindings(waived)

	if *jsonOut {
		emitJSON(map[string]any{
			"findings":       ensure(live),
			"waived":         ensure(waived),
			"unused_waivers": unused,
			"counts": map[string]int{
				"findings":       len(live),
				"waivers":        len(waived),
				"unused_waivers": len(unused),
			},
		})
		if len(live) > 0 {
			os.Exit(1)
		}
		return
	}

	for _, f := range live {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(waived) > 0 {
		fmt.Printf("chanos-vet: %d waiver(s) in effect:\n", len(waived))
		for _, f := range waived {
			fmt.Printf("  %s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Justification)
		}
	}
	for _, w := range unused {
		reason := "suppresses nothing (stale? fix or remove)"
		if w.Malformed != "" {
			reason = w.Malformed
		}
		fmt.Printf("chanos-vet: warning: %s:%d: //chanos:allow %s: %s\n", w.File, w.Line, w.Analyzer, reason)
	}
	if len(live) > 0 {
		fmt.Printf("chanos-vet: %d non-waived finding(s)\n", len(live))
		os.Exit(1)
	}
	fmt.Printf("chanos-vet: ok (%d packages, %d findings, %d waivers)\n", len(pkgs), len(live), len(waived))
}

func sortFindings(fs []lint.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// ensure keeps empty slices as [] rather than null in JSON output.
func ensure(fs []lint.Finding) []lint.Finding {
	if fs == nil {
		return []lint.Finding{}
	}
	return fs
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "chanos-vet: %v\n", err)
		os.Exit(2)
	}
}
