// Command chanos-dump inspects machine core dumps written by the
// internal/dump subsystem.
//
// Usage:
//
//	chanos-dump <dump.json>              render a human summary
//	chanos-dump -validate <dump.json>    structural validation (exit 1 on problems)
//	chanos-dump -diff <a.json> <b.json>  structural diff (exit 1 when they differ)
package main

import (
	"flag"
	"fmt"
	"os"

	"chanos/internal/dump"
	"chanos/internal/store"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "structurally validate the dump")
		diff     = flag.Bool("diff", false, "structurally diff two dumps")
	)
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "chanos-dump: -diff needs exactly two dump files")
			os.Exit(2)
		}
		os.Exit(diffDumps(flag.Arg(0), flag.Arg(1)))
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: chanos-dump [-validate | -diff] <dump.json> [dump.json]")
		os.Exit(2)
	case *validate:
		os.Exit(validateDump(flag.Arg(0)))
	default:
		os.Exit(inspect(flag.Arg(0)))
	}
}

func load(path string) *dump.Dump {
	d, err := dump.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chanos-dump: %v\n", err)
		os.Exit(1)
	}
	return d
}

func validateDump(path string) int {
	d := load(path)
	if bad := d.Validate(); len(bad) > 0 {
		fmt.Printf("%s: INVALID\n", path)
		for _, b := range bad {
			fmt.Printf("  %s\n", b)
		}
		return 1
	}
	fmt.Printf("%s: valid (schema v%d, scenario %s, seed %d, event %d)\n",
		path, d.Version, d.Config.Scenario, d.Seed, d.EventCount)
	return 0
}

func diffDumps(pa, pb string) int {
	a, b := load(pa), load(pb)
	diffs := dump.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Println("dumps are identical")
		return 0
	}
	for _, l := range diffs {
		fmt.Println(l)
	}
	return 1
}

var lifecycleNames = []string{"solo", "failed-over", "syncing", "quorum", "failed"}

func inspect(path string) int {
	d := load(path)
	fmt.Printf("machine core dump %s (schema v%d)\n", path, d.Version)
	fmt.Printf("  reason      %s\n", d.Reason)
	fmt.Printf("  repro       scenario=%s seed=%d event=%d (cycle %d)\n",
		d.Config.Scenario, d.Seed, d.EventCount, d.AtCycles)
	fmt.Printf("  replay      %s\n", dump.ReplayCommand(path))
	fmt.Printf("  config      %d cores, %d clients, %d requests, %d keys, %d%% reads, logblocks=%d, replicas=%d\n",
		d.Config.Cores, d.Config.Clients, d.Config.Requests, d.Config.Keys,
		d.Config.ReadPct, d.Config.LogBlocks, d.Config.Replicas)
	if d.Config.FailWrites > 0 {
		fmt.Printf("  fault       %d injected write failures on shard %d\n",
			d.Config.FailWrites, d.Config.FailShard)
	}

	running, ready, blocked := 0, 0, 0
	for _, t := range d.Threads {
		switch t.State {
		case "running":
			running++
		case "ready":
			ready++
		default:
			blocked++
		}
	}
	fmt.Printf("  sched       %d cores, %d threads (%d running, %d ready, %d blocked)\n",
		len(d.Cores), len(d.Threads), running, ready, blocked)

	var rxQ int
	for _, q := range d.NIC {
		rxQ += q.RxOccupancy
	}
	fmt.Printf("  nic         %d queues, %d rx frames queued\n", len(d.NIC), rxQ)
	conns := 0
	for _, sh := range d.Net {
		conns += len(sh.Conns)
	}
	fmt.Printf("  net         %d shards, %d live connections\n", len(d.Net), conns)

	sections := []struct {
		name   string
		shards []dumpShardView
	}{
		{"store", shardViews(d.Store)},
		{"replica", shardViews(d.Replica)},
	}
	for _, sec := range sections {
		for _, v := range sec.shards {
			fmt.Printf("  %-7s #%d  %-11s %5d keys, %6d live bytes, %3d cached blocks, %4d disk writes, flight %d/%d%s\n",
				sec.name, v.shard, v.state, v.keys, v.liveBytes, v.cached, v.diskWrites,
				v.flightLen, v.flightRecorded, v.failed)
		}
	}

	if d.Telemetry != nil {
		fmt.Printf("  telemetry   %d services at cycle %d\n", len(d.Telemetry.Services), d.Telemetry.AtCycles)
	}
	if bad := d.Validate(); len(bad) > 0 {
		fmt.Printf("  WARNING: dump fails structural validation (%d problems; run -validate)\n", len(bad))
		return 1
	}
	return 0
}

type dumpShardView struct {
	shard, keys, liveBytes, cached, flightLen int
	diskWrites, flightRecorded                uint64
	state, failed                             string
}

func shardViews(shards []store.ShardSnapshot) []dumpShardView {
	out := make([]dumpShardView, 0, len(shards))
	for _, sh := range shards {
		v := dumpShardView{
			shard: sh.Shard, keys: len(sh.Index), liveBytes: sh.LiveBytes,
			cached: len(sh.CacheBlocks), flightLen: len(sh.Flight),
			diskWrites: sh.Disk.Writes, flightRecorded: sh.FlightRecorded,
			state: "?",
		}
		if int(sh.Lifecycle) < len(lifecycleNames) {
			v.state = lifecycleNames[sh.Lifecycle]
		}
		if sh.Failed != "" {
			v.failed = "  FAILED: " + sh.Failed
		}
		out = append(out, v)
	}
	return out
}
