// Fileserver: the paper's §4 file system — "every vnode is its own
// thread, which communicates with other threads that administer cylinder
// groups and free-maps and so forth" — serving a metadata-heavy workload,
// side by side with the big-lock design on identical hardware.
//
// Run: go run ./examples/fileserver
package main

import (
	"fmt"

	"chanos"
	"chanos/internal/blockdev"
	"chanos/internal/core"
	"chanos/internal/sim"
	"chanos/internal/vfs"
	"chanos/internal/workload"
)

const (
	cores   = 32
	clients = 12
	nDirs   = 8
	nFiles  = 12
)

func main() {
	fmt.Println("fileserver: vnode-per-thread FS vs big-lock FS,",
		cores, "cores,", clients, "clients")
	msgOps, msgVnodes := run("message")
	lockOps, _ := run("biglock")
	fmt.Printf("\n  message FS   %8.0f ops/sec  (%d vnode threads spawned)\n", msgOps, msgVnodes)
	fmt.Printf("  big-lock FS  %8.0f ops/sec\n", lockOps)
	fmt.Printf("  speedup      %8.2fx\n", msgOps/lockOps)
}

func run(kind string) (opsPerSec float64, vnodes uint64) {
	sys := chanos.New(cores, chanos.Config{Seed: 11})
	defer sys.Shutdown()

	disk := blockdev.NewDisk(sys.RT, blockdev.DefaultDiskParams(16384))
	drv := blockdev.NewDriver(sys.RT, disk, 128, 0)

	var built vfs.FS
	ready := sys.NewChan("ready", 1)
	sys.Boot("setup", func(t *chanos.Thread) {
		sb, err := vfs.Format(t, drv, 16384, 4096)
		if err != nil {
			panic(err)
		}
		var fs vfs.FS
		switch kind {
		case "message":
			fs = vfs.NewMsgFS(sys.RT, drv, sb, vfs.MsgFSConfig{CacheBlocks: 2048})
		case "biglock":
			fs = vfs.NewLockFS(sys.RT, drv, sb, vfs.LockFSConfig{Mode: vfs.LockModeBig, CacheBlocks: 2048})
		}
		built = fs
		for d := 0; d < nDirs; d++ {
			dir := fmt.Sprintf("/vol%d", d)
			if _, err := fs.Mkdir(t, dir); err != nil {
				panic(err)
			}
			for f := 0; f < nFiles; f++ {
				p := fmt.Sprintf("%s/file%d", dir, f)
				if _, err := fs.Create(t, p); err != nil {
					panic(err)
				}
				if err := fs.Write(t, p, 0, []byte("contents of "+p)); err != nil {
					panic(err)
				}
			}
		}
		ready.Send(t, fs)
	})

	// Drain the setup phase completely before starting the clock: the
	// ready channel is buffered, so Run returns once the tree is built.
	sys.Run()

	counts := make([]uint64, clients)
	sys.Boot("driver", func(t *chanos.Thread) {
		v, _ := ready.Recv(t)
		fs := v.(vfs.FS)
		for i := 0; i < clients; i++ {
			i := i
			rng := sim.NewRNG(100 + uint64(i))
			dirs := workload.NewPopularity(rng, nDirs, 1.0)
			t.Spawn(fmt.Sprintf("client%d", i), func(ct *core.Thread) {
				// Open a working set once (the paper's channel plumbing /
				// fd table), then operate on handles.
				type opener interface {
					stat(ct *core.Thread) (vfs.Inode, error)
					read(ct *core.Thread) ([]byte, error)
					write(ct *core.Thread, data []byte) error
				}
				handles := make(map[string]opener)
				open := func(p string) opener {
					if h, ok := handles[p]; ok {
						return h
					}
					var h opener
					switch f := fs.(type) {
					case *vfs.MsgFS:
						mh, err := f.Open(ct, p)
						if err != nil {
							return nil
						}
						h = msgHandle{mh}
					case *vfs.LockFS:
						ino, err := f.Open(ct, p)
						if err != nil {
							return nil
						}
						h = lockHandle{f, ino}
					}
					handles[p] = h
					return h
				}
				for {
					p := fmt.Sprintf("/vol%d/file%d", dirs.Next(), rng.Intn(nFiles))
					h := open(p)
					if h == nil {
						continue
					}
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // 50% stat
						h.stat(ct)
					case 5, 6, 7: // 30% read
						h.read(ct)
					default: // 20% write
						h.write(ct, []byte("fresh data"))
					}
					counts[i]++
					ct.Compute(500)
				}
			})
		}
	})

	window := sys.Cycles(0.004) // 4 simulated milliseconds
	sys.RunFor(window)

	var total uint64
	for _, c := range counts {
		total += c
	}
	if m, ok := built.(*vfs.MsgFS); ok {
		vnodes = m.VnodesSpawned
	}
	return float64(total) / sys.Seconds(window), vnodes
}

// msgHandle adapts a MsgFS handle (direct vnode channel).
type msgHandle struct{ h *vfs.Handle }

func (m msgHandle) stat(ct *core.Thread) (vfs.Inode, error) { return m.h.Stat(ct) }
func (m msgHandle) read(ct *core.Thread) ([]byte, error)    { return m.h.Read(ct, 0, 64) }
func (m msgHandle) write(ct *core.Thread, d []byte) error   { return m.h.Write(ct, 0, d) }

// lockHandle adapts a LockFS inode handle (trap + lock per op).
type lockHandle struct {
	fs  *vfs.LockFS
	ino int
}

func (l lockHandle) stat(ct *core.Thread) (vfs.Inode, error) { return l.fs.StatIno(ct, l.ino) }
func (l lockHandle) read(ct *core.Thread) ([]byte, error)    { return l.fs.ReadIno(ct, l.ino, 0, 64) }
func (l lockHandle) write(ct *core.Thread, d []byte) error   { return l.fs.WriteIno(ct, l.ino, 0, d) }
