// Webserver: the paper's architecture serving the workload the ROADMAP
// cares about — heavy request/response traffic from a fleet of clients.
// The NIC delivers each connection's packets to the netstack shard that
// owns it, the accept loop receives connections as messages, and every
// connection gets its own lightweight handler thread ("starting one is
// easy"). No locks anywhere: the connection table is sharded, the socket
// is a channel.
//
// Run: go run ./examples/webserver [-clients 128] [-requests 10000] [-seed 7]
package main

import (
	"flag"
	"fmt"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/net"
)

func main() {
	var (
		cores    = flag.Int("cores", 64, "simulated cores")
		clients  = flag.Int("clients", 128, "closed-loop clients on the wire")
		requests = flag.Int("requests", 10_000, "simulated client requests to serve")
		seed     = flag.Uint64("seed", 7, "simulation seed")
		loss     = flag.Float64("loss", 0, "wire packet loss probability (each direction)")
	)
	flag.Parse()

	sys := chanos.New(*cores, chanos.Config{Seed: *seed})
	defer sys.Shutdown()
	k := kernel.New(sys.RT, kernel.Config{})
	nic := sys.NewNIC(machine.NICParams{})
	wp := net.DefaultWireParams()
	wp.Seed = *seed
	wp.LossProb = *loss
	nw := sys.NewNetwork(nic, wp)
	st := sys.NewNetStack(k, nic, net.StackParams{})
	l := st.Listen(80)

	fmt.Printf("webserver: %d cores, %d netstack shards, %d clients, seed %d\n",
		*cores, st.Shards(), *clients, *seed)

	// Accept loop: connections arrive as messages; each gets a thread.
	var bytesOut uint64
	sys.Boot("accept", func(t *chanos.Thread) {
		for {
			c, ok := l.Accept(t)
			if !ok {
				return
			}
			t.Spawn(fmt.Sprintf("conn.%d", c.ID()), func(ht *core.Thread) {
				serve(ht, c, &bytesOut)
			})
		}
	})

	pool := net.NewClientPool(nw, net.ClientParams{
		Port:        80,
		Clients:     *clients,
		ReqsPerConn: 8,
		ThinkCycles: 2000,
		Seed:        *seed,
		MakeReq: func(client, req int) (core.Msg, int) {
			return httpReq{Method: "GET", Path: fmt.Sprintf("/item/%d/%d", client, req)}, 96
		},
	})

	// Serve until the fleet has received the requested number of
	// responses — or stops making progress (e.g. -loss 1 delivers
	// nothing, ever).
	slice := sys.Cycles(0.0002) // 0.2 simulated ms per stride
	stalled := 0
	for pool.Responses < uint64(*requests) {
		before := pool.Responses
		sys.RunFor(slice)
		if pool.Responses == before {
			stalled++
		} else {
			stalled = 0
		}
		if stalled >= 50 {
			fmt.Printf("\n  stalled: no responses for %.1f simulated ms; giving up\n",
				50*sys.Seconds(slice)*1e3)
			break
		}
	}

	elapsed := sys.Seconds(sys.Now()) * 1e3
	fmt.Printf("\n  served       %8d requests over %d connections\n", pool.Responses, pool.Completed)
	fmt.Printf("  elapsed      %8.2f simulated ms  (%.0f req/sec, %.0f conns/sec)\n",
		elapsed, float64(pool.Responses)/sys.Seconds(sys.Now()), float64(pool.Completed)/sys.Seconds(sys.Now()))
	us := func(cycles uint64) float64 { return sys.Seconds(cycles) * 1e6 }
	fmt.Printf("  latency      %8.1f us p50   %.1f us p99\n",
		us(pool.Lat.Percentile(50)), us(pool.Lat.Percentile(99)))
	fmt.Printf("  wire         %8d pkts in, %d pkts out, %d retransmits, %d rx drops\n",
		nw.ToHost, nw.ToClient, st.Counters().Retransmits+nw.Retransmits, nic.Counters().RxDrops)
	fmt.Printf("  payload      %8d bytes of responses\n", bytesOut)
}

// httpReq is the HTTP-ish request message.
type httpReq struct {
	Method string
	Path   string
}

// MsgBytes implements core.Sized.
func (r httpReq) MsgBytes() int { return 16 + len(r.Method) + len(r.Path) }

// httpResp is the HTTP-ish response message.
type httpResp struct {
	Status int
	Body   string
}

// MsgBytes implements core.Sized.
func (r httpResp) MsgBytes() int { return 16 + len(r.Body) }

// serve handles one connection: read a request, render, respond, until
// the client closes.
func serve(t *core.Thread, c *chanos.Conn, bytesOut *uint64) {
	for {
		v, ok := c.Recv(t)
		if !ok {
			break
		}
		req, ok := v.(httpReq)
		if !ok {
			continue
		}
		t.Compute(3000) // route, render, format: ~1.5 µs of app work
		body := "<html>" + req.Path + "</html>"
		resp := httpResp{Status: 200, Body: body}
		wire := 128 + len(body)
		*bytesOut += uint64(wire)
		c.Send(t, resp, wire)
	}
	c.Close(t)
}
