// GUI app: the paper's §3.1 peer-structuring argument, after Newsqueak
// ("a language for communicating with mice"). The application and the
// display are PEERS exchanging messages in both directions — neither
// "sits atop" the other, no callback inversion: the display pushes input
// events down one channel while the app pushes damage/redraw requests up
// another, each in its own loop, selected with Choose.
//
// Run: go run ./examples/guiapp
package main

import (
	"fmt"

	"chanos"
	"chanos/internal/sim"
)

type mouseEvent struct{ X, Y int }
type keyEvent struct{ Ch rune }
type redraw struct{ Region int }
type quit struct{}

func main() {
	sys := chanos.New(4, chanos.Config{Seed: 23})
	defer sys.Shutdown()

	input := sys.NewChan("display->app input", 8) // events flow "down"
	damage := sys.NewChan("app->display damage", 8)

	// The display peer: generates input events (a user!) and repaints
	// damaged regions the app announces — both directions, one loop.
	sys.Boot("display", func(t *chanos.Thread) {
		rng := sim.NewRNG(5)
		nextInput := t.Runtime().After(2_000)
		painted := 0
		for {
			idx, v, ok := t.Choose(
				chanos.Case{Ch: damage, Dir: chanos.RecvDir},
				chanos.Case{Ch: nextInput, Dir: chanos.RecvDir},
			)
			if !ok {
				return
			}
			switch idx {
			case 0:
				if _, isQuit := v.(quit); isQuit {
					fmt.Printf("[display] app asked to quit after %d repaints\n", painted)
					return
				}
				d := v.(redraw)
				t.Compute(3_000) // rasterise
				painted++
				fmt.Printf("[display] repainted region %d\n", d.Region)
			case 1:
				// Synthesize the next user action.
				if rng.Bool(0.5) {
					input.Send(t, mouseEvent{X: rng.Intn(640), Y: rng.Intn(480)})
				} else {
					input.Send(t, keyEvent{Ch: rune('a' + rng.Intn(26))})
				}
				nextInput = t.Runtime().After(4_000)
			}
		}
	})

	// The application peer: reacts to input by computing and announcing
	// damage. No callbacks, no artificial hierarchy — it also talks to a
	// worker thread while staying responsive.
	sys.Boot("app", func(t *chanos.Thread) {
		clicks, keys := 0, 0
		for clicks+keys < 12 {
			v, ok := input.Recv(t)
			if !ok {
				return
			}
			switch ev := v.(type) {
			case mouseEvent:
				clicks++
				t.Compute(1_500) // hit test, update model
				damage.Send(t, redraw{Region: ev.X % 4})
			case keyEvent:
				keys++
				t.Compute(800) // insert into buffer
				damage.Send(t, redraw{Region: 3})
				fmt.Printf("[app] key %q\n", ev.Ch)
			}
		}
		fmt.Printf("[app] handled %d clicks and %d keys; quitting\n", clicks, keys)
		damage.Send(t, quit{})
	})

	sys.Run()
	fmt.Printf("\npeer GUI done at %.1f µs simulated; %d messages total\n",
		sys.Seconds(sys.Now())*1e6, sys.Stats().Sends)
}
