// Telecom: an AXD301-flavoured call switch. Call-setup workers are
// supervised Erlang-style; faults are injected continuously; the switch
// keeps serving — the paper's "aim for not failing" (§5), behind the
// "nine nines" citation (§1).
//
// Run: go run ./examples/telecom
package main

import (
	"errors"
	"fmt"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/sim"
	"chanos/internal/supervise"
)

const (
	cores      = 16
	workers    = 4
	callRate   = 50_000 // calls/sec offered
	faultEvery = 0.0005 // simulated seconds between injected worker crashes
	runSecs    = 0.02   // simulated run length
)

func main() {
	sys := chanos.New(cores, chanos.Config{Seed: 3})
	defer sys.Shutdown()

	calls := sys.NewChan("calls", 64)
	var completed, dropped, faults uint64

	worker := func(t *chanos.Thread) {
		for {
			v, ok := calls.Recv(t)
			if !ok {
				return
			}
			call := v.(core.Call)
			if _, bad := call.Arg.(poison); bad {
				t.Fail(errors.New("injected software fault"))
			}
			t.Compute(8_000) // call setup: routing, billing, trunk select
			call.Reply.Send(t, true)
		}
	}

	var sup *supervise.Supervisor
	sys.Boot("switch", func(t *chanos.Thread) {
		specs := make([]supervise.ChildSpec, workers)
		for i := range specs {
			specs[i] = supervise.ChildSpec{Name: fmt.Sprintf("callworker%d", i), Start: worker}
		}
		sup = supervise.Spawn(t, "switch-sup",
			supervise.Config{Strategy: supervise.OneForOne, MaxRestarts: 1_000_000},
			specs)
	})

	// Fault injector: periodically poison one call; whichever worker
	// picks it up dies and is restarted by the supervisor.
	faultGap := sys.Cycles(faultEvery)
	var inject func()
	inject = func() {
		sys.Eng.After(faultGap, func() {
			sys.RT.InjectSend(calls, core.Call{Arg: poison{}}, 0)
			faults++
			inject()
		})
	}
	inject()

	// Offered call load (open loop, Poisson).
	rng := sim.NewRNG(17)
	uptime := supervise.NewUptime(0)
	gap := func() chanos.Time {
		g := sim.Time(rng.ExpFloat64() / callRate * 2e9)
		if g == 0 {
			g = 1
		}
		return g
	}
	var offer func()
	offer = func() {
		sys.Eng.After(gap(), func() {
			reply := sys.NewChan("r", 1)
			sys.RT.InjectSend(calls, core.Call{Reply: reply}, 0)
			deadline := sys.Eng.Now() + sys.Cycles(0.001) // 1 ms answer SLO
			sys.Boot("callwatch", func(t *chanos.Thread) {
				_, _, timedOut := t.RecvTimeout(reply, deadline-t.Now())
				if timedOut {
					dropped++
					uptime.Down(t.Now())
				} else {
					completed++
					uptime.Up(t.Now())
				}
			})
			offer()
		})
	}
	offer()

	sys.RunFor(sys.Cycles(runSecs))

	total := completed + dropped
	fmt.Println("telecom switch under continuous fault injection")
	fmt.Printf("  offered calls      %d\n", total)
	fmt.Printf("  completed          %d (%.3f%%)\n", completed, 100*float64(completed)/float64(total))
	fmt.Printf("  dropped (>1ms SLO) %d\n", dropped)
	fmt.Printf("  faults injected    %d\n", faults)
	fmt.Printf("  worker restarts    %d\n", sup.Restarts)
	fmt.Printf("  availability       %.6f (%.1f nines over this run)\n",
		uptime.Availability(sys.Now()), uptime.Nines(sys.Now()))
	fmt.Println("\nthe switch never stopped serving: workers died", sup.Restarts,
		"times and were restarted every time")
}

type poison struct{}
