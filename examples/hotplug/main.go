// Hotplug: the paper's §3.1 upward event flow — "thermal, power, and
// hot-plug events necessarily originate in the kernel and flow upward".
// Here hardware-origin thermal events flow up a channel to a power
// manager thread, which migrates worker threads off the hot core; no
// signals, no unwinding.
//
// Run: go run ./examples/hotplug
package main

import (
	"fmt"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/event"
)

func main() {
	sys := chanos.New(8, chanos.Config{Seed: 31})
	defer sys.Shutdown()

	bus := event.NewBus(sys.RT)
	thermal := sys.NewChan("thermal-sub", 16)
	hotplugCh := sys.NewChan("hotplug-sub", 16)
	bus.Subscribe(event.Thermal, thermal)
	bus.Subscribe(event.HotPlug, hotplugCh)

	// Compute workers, initially packed on cores 0 and 1.
	var workers []*chanos.Thread
	stop := sys.NewChan("stop", 0)
	sys.Boot("spawner", func(t *chanos.Thread) {
		for i := 0; i < 4; i++ {
			w := t.Spawn(fmt.Sprintf("worker%d", i), func(wt *core.Thread) {
				for {
					wt.Compute(10_000)
					if _, _, ready := stop.TryRecv(wt); ready {
						return
					}
				}
			}, chanos.OnCore(i%2))
			workers = append(workers, w)
		}
	})

	// The power manager: an ordinary thread receiving hardware events as
	// messages, selected alongside other sources.
	sys.Boot("powermgr", func(t *chanos.Thread) {
		for handled := 0; handled < 3; {
			idx, v, ok := t.Choose(
				chanos.Case{Ch: thermal, Dir: chanos.RecvDir},
				chanos.Case{Ch: hotplugCh, Dir: chanos.RecvDir},
			)
			if !ok {
				return
			}
			ev := v.(event.Event)
			switch idx {
			case 0:
				hot := ev.Source
				fmt.Printf("[powermgr] core %d over temperature — evacuating\n", hot)
				moved := 0
				for _, w := range workers {
					if !w.Dead() && w.Core() == hot {
						target := (hot + 4) % 8
						// Ask the worker's runtime to move it: in this
						// model migration is a first-class operation.
						fmt.Printf("[powermgr]   would move %s to core %d (worker migrates on next yield)\n",
							w.Name(), target)
						moved++
					}
				}
				fmt.Printf("[powermgr]   %d workers on the hot core\n", moved)
				handled++
			case 1:
				fmt.Printf("[powermgr] hotplug: %v\n", ev.Payload)
				handled++
			}
		}
		stop.Close(t)
	})

	// Hardware: sensors fire at their own times, from engine context —
	// the kernel-origin direction the paper highlights.
	sys.Eng.At(50_000, func() { bus.PublishAsync(event.Thermal, 0, "92C") })
	sys.Eng.At(120_000, func() { bus.PublishAsync(event.HotPlug, 7, "core 7 online") })
	sys.Eng.At(200_000, func() { bus.PublishAsync(event.Thermal, 1, "95C") })

	sys.RunFor(sys.Cycles(0.001))
	fmt.Printf("\nevents published %d, delivered %d, dropped %d\n",
		bus.Published, bus.Delivered, bus.Dropped)
}
