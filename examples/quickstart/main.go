// Quickstart: the paper's §3 constructs in one file — lightweight
// threads, blocking and buffered channels, the choose construct,
// channels-over-channels, and the RPC idiom
// ("c <- (a, b, c1); r <- c1").
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"chanos"
)

func main() {
	sys := chanos.New(8, chanos.Config{Seed: 7})
	defer sys.Shutdown()

	// A rendezvous channel: send blocks until the receiver takes the
	// value ("a blocking send waits until a receiver is available").
	greet := sys.NewChan("greet", 0)

	// A service that answers requests arriving with a reply channel —
	// "this is the basis of all network RPC systems, of course, but it
	// remains true at this level as well".
	double := sys.NewChan("double", 4)
	sys.Boot("doubler", func(t *chanos.Thread) {
		for {
			v, ok := double.Recv(t)
			if !ok {
				return
			}
			call := v.(Call)
			t.Compute(50) // pretend this is work
			call.Reply.Send(t, call.X*2)
		}
	})

	sys.Boot("main", func(t *chanos.Thread) {
		// start { ... } — threads are cheap.
		t.Spawn("greeter", func(t2 *chanos.Thread) {
			greet.Send(t2, "hello from a lightweight thread")
		})
		v, _ := greet.Recv(t)
		fmt.Printf("[%6d cycles] %v\n", t.Now(), v)

		// The RPC idiom with a fresh reply channel per call.
		reply := t.NewChan("reply", 1)
		double.Send(t, Call{X: 21, Reply: reply})
		r, _ := reply.Recv(t)
		fmt.Printf("[%6d cycles] double(21) = %v\n", t.Now(), r)

		// Choice: wait on whichever source is ready first, with a
		// timeout channel — functionality akin to select, "one of the
		// things that makes the model powerful".
		fast := t.NewChan("fast", 1)
		slow := t.NewChan("slow", 1)
		t.Spawn("fastProducer", func(t2 *chanos.Thread) {
			t2.Sleep(1_000)
			fast.Send(t2, "fast source")
		})
		t.Spawn("slowProducer", func(t2 *chanos.Thread) {
			t2.Sleep(50_000)
			slow.Send(t2, "slow source")
		})
		timer := t.Runtime().After(100_000)
		idx, got, _ := t.Choose(
			chanos.Case{Ch: fast, Dir: chanos.RecvDir},
			chanos.Case{Ch: slow, Dir: chanos.RecvDir},
			chanos.Case{Ch: timer, Dir: chanos.RecvDir},
		)
		fmt.Printf("[%6d cycles] choose picked case %d: %v\n", t.Now(), idx, got)

		// Channels through channels: plumb a connection, then move the
		// data directly to its destination.
		plumb := t.NewChan("plumb", 0)
		t.Spawn("consumer", func(t2 *chanos.Thread) {
			v, _ := plumb.Recv(t2)
			data := v.(*chanos.Chan)
			payload, _ := data.Recv(t2)
			fmt.Printf("[%6d cycles] consumer got %q via a plumbed channel\n",
				t2.Now(), payload)
		})
		pipe := t.NewChan("pipe", 0)
		plumb.Send(t, pipe)
		pipe.Send(t, "payload moved end-to-end")

		double.Close(t)
	})

	sys.Run()
	st := sys.Stats()
	fmt.Printf("\n%d threads, %d messages, %d rendezvous, %.2f µs simulated\n",
		st.Spawns, st.Sends, st.Rendezvous, sys.Seconds(sys.Now())*1e6)
}

// Call is a request carrying its reply channel.
type Call struct {
	X     int
	Reply *chanos.Chan
}
