// Kvserver: the paper's architecture carrying the ROADMAP's first
// stateful workload — a key-value store serving a fleet of remote
// clients. Every hop is a message: requests cross the wire, land on the
// NIC queue RSS picks, are routed to the netstack shard owning the
// connection, rise into a per-connection handler thread, drop into the
// store shard owning the key, and (for writes) ride a group-commit
// flush to the shard's private log device before the acknowledgement
// travels all the way back. No locks anywhere on that path.
//
// The world boots through the internal/dump kvload scenario, which is
// the replay contract: with -dump-on-fail DIR, any shard fail-stop,
// stall, or conservation violation writes a machine core dump plus the
// one-command `chanos-sim -replay` line that reproduces it exactly.
//
// Run: go run ./examples/kvserver [-clients 128] [-requests 20000] [-readpct 70] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"path/filepath"

	"chanos/internal/dump"
)

func main() {
	var (
		cores      = flag.Int("cores", 64, "simulated cores")
		clients    = flag.Int("clients", 128, "closed-loop clients on the wire")
		requests   = flag.Int("requests", 20_000, "client requests to serve")
		readPct    = flag.Int("readpct", 70, "share of requests that are GETs (0-100)")
		keys       = flag.Int("keys", 4096, "keyspace size")
		seed       = flag.Uint64("seed", 7, "simulation seed")
		loss       = flag.Float64("loss", 0, "wire packet loss probability (each direction)")
		logBlocks  = flag.Int("logblocks", 0, "per-shard log-region blocks (small values force compaction; 0 = default 8192)")
		replicas   = flag.Int("replicas", 0, "replica machines (0 = local-only acks, 1 = quorum: writes ack only when durable on both machines)")
		machines   = flag.Int("machines", 0, "cluster mode: N serving nodes routed by a shard map (0 = single machine)")
		rf         = flag.Int("rf", 0, "cluster mode: replica machines per node, majority-quorum acks")
		replReads  = flag.Bool("replica-reads", false, "with -replicas 1: serve a second GET-only fleet from the replica's bounded-staleness read port")
		statsEvery = flag.Float64("stats-every", 0, "print a live telemetry line every N simulated ms (0 = off)")
		failWrites = flag.Int("fail-writes", 0, "fault injection: fail the next N log-device write completions after prefill")
		failShard  = flag.Int("fail-shard", 0, "which shard's log device the injected failures hit")
		dumpOnFail = flag.String("dump-on-fail", "", "write a machine core dump into this directory on any fail-stop, stall or invariant violation")
	)
	flag.Parse()
	if *machines > 1 {
		runCluster(*machines, *rf, *cores, *clients, *requests, *readPct, *keys, *seed)
		return
	}
	if *rf > 0 {
		fmt.Println("kvserver: -rf needs -machines N; ignoring")
	}
	if *replReads && *replicas == 0 {
		fmt.Println("kvserver: -replica-reads needs -replicas 1; ignoring")
		*replReads = false
	}
	if *replicas > 1 {
		fmt.Println("kvserver: only one replica machine is supported; running with 1")
		*replicas = 1
	}

	w := dump.Build(*seed, dump.Config{
		Cores: *cores, Clients: *clients, Requests: *requests,
		ReadPct: *readPct, Keys: *keys, LogBlocks: *logBlocks,
		Replicas: *replicas, ReplicaReads: *replReads, Loss: *loss,
		FailWrites: *failWrites, FailShard: *failShard,
	})
	defer w.Close()
	sys, kv, st, sd := w.Sys, w.KV, w.Stack, w.SD

	// Arm automatic core dumps: a shard fail-stop captures the machine
	// the instant it happens (an engine observer event, invisible to the
	// replay clock); stalls and conservation violations dump from host
	// context after the run loop below.
	writeDump := func(d *dump.Dump) {
		path := filepath.Join(*dumpOnFail, d.FileName())
		if err := dump.WriteFile(path, d, kv); err != nil {
			fmt.Printf("  dump FAILED: %v\n", err)
			return
		}
		fmt.Printf("  dump written: %s\n", path)
		fmt.Printf("    reason: %s\n", d.Reason)
		fmt.Printf("    replay: %s\n", dump.ReplayCommand(path))
	}
	if *dumpOnFail != "" {
		w.C.OnFailStop(writeDump)
	}

	mode := "local-only durability"
	if w.RM != nil {
		mode = "quorum replication to a second machine"
		if *replReads {
			mode += " + bounded-staleness replica reads"
		}
	}
	fmt.Printf("kvserver: %d cores, %d store shards, %d net shards, %d clients, %d keys, %d%% reads, seed %d, %s\n",
		*cores, kv.Shards(), st.Shards(), *clients, *keys, *readPct, *seed, mode)
	if *failWrites > 0 {
		fmt.Printf("kvserver: fault armed: next %d write completions on shard %d's log device will fail\n",
			*failWrites, *failShard)
	}

	// With -stats-every, a live telemetry line prints between run slices
	// (host context; the collector costs the machine zero simulated
	// cycles): the same snapshot path the STATS wire verb serves.
	slice := sys.Cycles(0.0002)
	statsStride := 0
	if *statsEvery > 0 {
		statsStride = int(sys.Cycles(*statsEvery/1e3)/slice) + 1
	}
	lastResp, lastHits, lastMisses := uint64(0), uint64(0), uint64(0)
	lastAt := sys.Now()
	w.OnSlice = func(i int) {
		if statsStride == 0 || (i+1)%statsStride != 0 {
			return
		}
		snap := sd.SnapshotNow()
		stc := snap.Service("store")
		hits, misses := stc.Total("CacheHits"), stc.Total("CacheMisses")
		hr := 0.0
		if d := (hits - lastHits) + (misses - lastMisses); d > 0 {
			hr = float64(hits-lastHits) / float64(d)
		}
		secs := sys.Seconds(sys.Now() - lastAt)
		fmt.Printf("  [%7.2f ms] state=%-11s ops/sec=%-9.0f hit=%3.0f%% repl-lag=%-6d in-flight=%d\n",
			sys.Seconds(sys.Now())*1e3, kv.Lifecycle(),
			float64(w.Pool.Responses-lastResp)/secs, hr*100,
			stc.Total("ReplLag"), stc.Total("WritesInFlight"))
		lastResp, lastHits, lastMisses, lastAt = w.Pool.Responses, hits, misses, sys.Now()
	}

	// Prefill the keyspace, then drive the shared seeded workload
	// generator (same one experiment E15 measures): two-tier key
	// popularity, mixed GET/PUT, responses checked as they arrive.
	r := w.Run()
	pool := r.Pool
	prefillMs := sys.Seconds(r.PrefillCycles) * 1e3
	if r.Stalled {
		fmt.Printf("\n  stalled: no responses for %.1f simulated ms; giving up\n",
			50*sys.Seconds(slice)*1e3)
	}

	// The final report reads one telemetry snapshot — the same folded
	// view a live STATS scrape would have returned.
	snap := sd.SnapshotNow()
	kc := kv.Counters()
	elapsed := sys.Seconds(sys.Now())
	us := func(cycles uint64) float64 { return sys.Seconds(cycles) * 1e6 }
	hr := 0.0
	if kc.CacheHits+kc.CacheMisses > 0 {
		hr = float64(kc.CacheHits) / float64(kc.CacheHits+kc.CacheMisses)
	}
	var diskWrites, diskBytes uint64
	for _, d := range kv.Disks() {
		diskWrites += d.Writes
		diskBytes += d.BytesMoved
	}
	fmt.Printf("\n  served       %8d requests over %d connections (%d not-found, %d errors)\n",
		pool.Responses, pool.Completed, r.NotFound, r.Errs)
	fmt.Printf("  elapsed      %8.2f simulated ms (%.2f ms prefill)  (%.0f ops/sec)\n",
		elapsed*1e3, prefillMs, float64(pool.Responses)/elapsed)
	fmt.Printf("  latency      %8.1f us p50   %.1f us p99\n",
		us(pool.Lat.Percentile(50)), us(pool.Lat.Percentile(99)))
	fmt.Printf("  store        %8d gets (%.0f%% cache hits), %d puts acked durable, %d deletes\n",
		kc.Gets, hr*100, kc.AckedWrites, kc.Deletes)
	if fl := snap.Service("store").TotalHist("FlushLatency"); fl != nil && fl.N > 0 {
		fmt.Printf("  log          %8d flushes (p50 %.1f us, p99 %.1f us), %d disk writes, %d MB moved\n",
			kc.FlushesDone, us(fl.P50), us(fl.P99), diskWrites, diskBytes>>20)
	} else {
		fmt.Printf("  log          %8d flushes, %d disk writes, %d MB moved\n",
			kc.FlushesDone, diskWrites, diskBytes>>20)
	}
	fmt.Printf("  compaction   %8d runs, %d records copied, %d writes refused (log full), live ratio %.2f\n",
		kc.CompactionsDone, kc.CompactedRecords, kc.LogFull, kv.LiveRatio())
	stc := st.Counters()
	fmt.Printf("  wire         %8d pkts in, %d pkts out, %d retransmits, %d window-deferred, %d rx drops\n",
		w.NW.ToHost, w.NW.ToClient, stc.Retransmits+w.NW.Retransmits, w.NW.WindowDeferred, w.NIC.Counters().RxDrops)
	// The lifecycle state prints unconditionally: "solo" (never
	// replicated) and "failed-over"/"syncing" (degraded) are different
	// operational situations, and a 0/0 replication line used to make
	// them indistinguishable.
	if w.RM == nil {
		fmt.Printf("  replication  state=%s (no replica attached; acks are local-flush only)\n", kv.Lifecycle())
	} else {
		var rWrites uint64
		for _, d := range w.RM.KV.Disks() {
			rWrites += d.Writes
		}
		rc := w.RM.KV.Counters()
		fmt.Printf("  replication  state=%s; %d batches (%d records) shipped, %d acks, %d adverts; %d shard heals, %d detaches\n",
			kv.Lifecycle(), kc.ReplBatches, kc.ReplRecords, kc.ReplAcks, kc.ReplAdverts, kc.ReplHeals, kc.ReplDetached)
		fmt.Printf("  replica      %8d applied (%d stale), %d disk writes\n",
			rc.ReplApplied, rc.ReplStale, rWrites)
		// One row per attached replica machine: a healing or lagging
		// minority must be visible even while the aggregate reads
		// "quorum".
		for _, rs := range kv.LifecycleReport() {
			fmt.Printf("    slot %d     state=%-9s port %d; %d/%d shards synced, %d armed, max lag %d\n",
				rs.Slot, rs.State, rs.Port, rs.Synced, rs.Shards, rs.Armed, rs.MaxLag)
		}
		if r.RPool != nil {
			fmt.Printf("  repl reads   %8d GETs served over %d conns (%d refused: lag/sync), %d lag-refused, %d durability waits, p99 %.1f us\n",
				r.ReplicaGets, r.RPool.Completed, r.ReplicaRefused, rc.RefusedSyncing+rc.RefusedLag, rc.ReplicaWaits, us(r.RPool.Lat.Percentile(99)))
		}
	}
	// Conservation self-check over the final snapshot: every read and
	// write arrival must be accounted for by exactly one terminal counter
	// or in-flight gauge. A violation is an invariant failure — with
	// -dump-on-fail it produces a core dump like any fail-stop.
	if len(r.ConservationBad) > 0 {
		for _, b := range r.ConservationBad {
			fmt.Printf("  CONSERVATION VIOLATED: %s\n", b)
		}
	} else {
		fmt.Printf("  telemetry    snapshot seq=%d at %.2f ms; conservation laws hold\n",
			snap.Seq, sys.Seconds(snap.AtCycles)*1e3)
	}
	if *dumpOnFail != "" && !w.C.Dumped() {
		if len(r.ConservationBad) > 0 {
			writeDump(w.C.Snapshot("invariant: telemetry conservation violated"))
		} else if r.Stalled {
			writeDump(w.C.Snapshot("stall: fleet made no progress for 50 slices"))
		}
	}
}

// runCluster is kvserver's -machines mode: N serving nodes, each a
// full machine with rf replica machines under majority-quorum acks,
// routed by a versioned shard map. It boots through the
// dump.ScenarioCluster world, so cluster runs share the single-machine
// replay contract: same (seed, config) → same nine-machine run.
func runCluster(machines, rf, cores, clients, requests, readPct, keys int, seed uint64) {
	w := dump.BuildCluster(seed, dump.Config{
		Machines: machines, RF: rf, Cores: cores, Clients: clients,
		Requests: requests, ReadPct: readPct, Keys: keys,
	})
	defer w.Close()
	cfg := w.Config()
	fmt.Printf("kvserver: cluster of %d nodes x (1 primary + %d replicas) = %d machines, %d cores each, %d clients, %d keys, %d%% reads, seed %d\n",
		cfg.Machines, cfg.RF, cfg.Machines*(1+cfg.RF), cfg.Cores, cfg.Clients, cfg.Keys, cfg.ReadPct, seed)

	r := w.Run()
	pool := w.Pool
	n0 := w.Cl.Nodes[0]
	elapsed := n0.M.Seconds(w.Cl.Eng.Now())
	fmt.Printf("\n  served       %8d requests (%.0f ops/sec); %d redirects followed, %d map refreshes, %d retries, %d lost, %d errors\n",
		pool.Ops, float64(pool.Ops)/elapsed, pool.Moved, pool.Refreshes, pool.Failed, pool.Lost, r.Errs)
	fmt.Printf("  elapsed      %8.2f simulated ms, %d counted events on one engine\n",
		elapsed*1e3, w.Cl.Eng.Fired())
	if r.Stalled {
		fmt.Println("  stalled: the fleet stopped making progress")
	}
	for _, n := range w.Cl.Nodes {
		kc := n.KV.Counters()
		fmt.Printf("  node %d       state=%-11s map v%d; %d gets, %d puts acked (%d quorum), %d redirects issued\n",
			n.ID, n.KV.Lifecycle(), w.Cl.Map(n.ID).Version,
			kc.Gets, kc.AckedWrites, kc.AckedQuorum, n.Moved)
		for _, rs := range n.KV.LifecycleReport() {
			fmt.Printf("    replica %d  state=%-9s port %d; %d/%d shards synced, %d armed, max lag %d\n",
				rs.Slot, rs.State, rs.Port, rs.Synced, rs.Shards, rs.Armed, rs.MaxLag)
		}
	}
	if len(r.ConservationBad) > 0 {
		for _, b := range r.ConservationBad {
			fmt.Printf("  CONSERVATION VIOLATED: %s\n", b)
		}
	} else {
		fmt.Println("  telemetry    node 0 conservation laws hold")
	}
}
