// Kvserver: the paper's architecture carrying the ROADMAP's first
// stateful workload — a key-value store serving a fleet of remote
// clients. Every hop is a message: requests cross the wire, land on the
// NIC queue RSS picks, are routed to the netstack shard owning the
// connection, rise into a per-connection handler thread, drop into the
// store shard owning the key, and (for writes) ride a group-commit
// flush to the shard's private log device before the acknowledgement
// travels all the way back. No locks anywhere on that path.
//
// Run: go run ./examples/kvserver [-clients 128] [-requests 20000] [-readpct 70] [-seed 7]
package main

import (
	"flag"
	"fmt"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/net"
	"chanos/internal/store"
)

func main() {
	var (
		cores     = flag.Int("cores", 64, "simulated cores")
		clients   = flag.Int("clients", 128, "closed-loop clients on the wire")
		requests  = flag.Int("requests", 20_000, "client requests to serve")
		readPct   = flag.Int("readpct", 70, "share of requests that are GETs (0-100)")
		keys      = flag.Int("keys", 4096, "keyspace size")
		seed      = flag.Uint64("seed", 7, "simulation seed")
		loss      = flag.Float64("loss", 0, "wire packet loss probability (each direction)")
		logBlocks = flag.Int("logblocks", 0, "per-shard log-region blocks (small values force compaction; 0 = default 8192)")
		replicas  = flag.Int("replicas", 0, "replica machines (0 = local-only acks, 1 = quorum: writes ack only when durable on both machines)")
		replReads = flag.Bool("replica-reads", false, "with -replicas 1: serve a second GET-only fleet from the replica's bounded-staleness read port")
	)
	flag.Parse()
	if *replReads && *replicas == 0 {
		fmt.Println("kvserver: -replica-reads needs -replicas 1; ignoring")
		*replReads = false
	}

	sys := chanos.New(*cores, chanos.Config{Seed: *seed})
	defer sys.Shutdown()
	k := kernel.New(sys.RT, kernel.Config{})
	nic := sys.NewNIC(machine.NICParams{})
	wp := net.DefaultWireParams()
	wp.Seed = *seed
	wp.LossProb = *loss
	nw := sys.NewNetwork(nic, wp)
	st := sys.NewNetStack(k, nic, net.StackParams{})
	kv := sys.NewStore(k, store.Params{LogBlocks: *logBlocks})
	var rm *store.ReplicaMachine
	if *replicas > 0 {
		if *replicas > 1 {
			fmt.Println("kvserver: only one replica machine is supported; running with 1")
		}
		rwp := net.DefaultWireParams()
		rwp.Seed = *seed + 1
		readPort := 0
		if *replReads {
			readPort = 6390
		}
		rm = store.NewReplicaMachine(sys.Eng, store.ReplicaMachineParams{
			Cores: *cores, Seed: *seed + 2, ReadPort: readPort,
			Store: store.Params{Shards: kv.Shards(), LogBlocks: *logBlocks},
			Wire:  rwp,
		}, nil)
		defer rm.Shutdown()
		kv.AttachReplica(rm)
	}
	l := st.Listen(6379)

	mode := "local-only durability"
	if rm != nil {
		mode = "quorum replication to a second machine"
		if *replReads {
			mode += " + bounded-staleness replica reads"
		}
	}
	fmt.Printf("kvserver: %d cores, %d store shards, %d net shards, %d clients, %d keys, %d%% reads, seed %d, %s\n",
		*cores, kv.Shards(), st.Shards(), *clients, *keys, *readPct, *seed, mode)

	// Accept loop: every connection gets a serving thread.
	sys.Boot("accept", func(t *chanos.Thread) {
		for {
			c, ok := l.Accept(t)
			if !ok {
				return
			}
			t.Spawn(fmt.Sprintf("kv.%d", c.ID()), func(ht *core.Thread) {
				store.ServeConn(ht, c, kv)
			})
		}
	})

	// Prefill the keyspace, then drive the shared seeded workload
	// generator (same one experiment E15 measures): two-tier key
	// popularity, mixed GET/PUT, responses checked as they arrive.
	wl := store.NewWorkload(*seed, *clients, *keys, *readPct, 256)
	filled := false
	sys.Boot("prefill", func(t *chanos.Thread) {
		wl.Prefill(t, kv)
		filled = true
	})
	for !filled {
		sys.RunFor(sys.Cycles(0.0005))
	}
	prefillMs := sys.Seconds(sys.Now()) * 1e3

	// With -replica-reads, a second GET-only fleet reads the same
	// keyspace from the replica machine's bounded-staleness port while
	// the primary fleet runs the mixed workload.
	var rPool *net.ClientPool
	var rGets, rRefused uint64
	if *replReads {
		rwl := store.NewWorkload(*seed+5, *clients, *keys, 100, 256)
		rPool = net.NewClientPool(rm.NW, net.ClientParams{
			Port:        6390,
			Clients:     *clients,
			ReqsPerConn: 8,
			ThinkCycles: 2000,
			Seed:        *seed + 5,
			MakeReq:     rwl.MakeReq,
			OnResp: func(client, req int, payload core.Msg) {
				if resp, ok := payload.(store.KVResponse); ok {
					if resp.OK {
						rGets++
					} else {
						rRefused++
					}
				}
			},
		})
	}

	var notFound, errs uint64
	pool := net.NewClientPool(nw, net.ClientParams{
		Port:        6379,
		Clients:     *clients,
		ReqsPerConn: 8,
		ThinkCycles: 2000,
		Seed:        *seed,
		MakeReq:     wl.MakeReq,
		OnResp: func(client, req int, payload core.Msg) {
			resp, ok := payload.(store.KVResponse)
			if !ok || resp.Err != "" {
				errs++
				return
			}
			if !resp.Found && resp.OK && resp.Ver == 0 {
				notFound++
			}
		},
	})

	// Serve until the fleet has its responses — or stops making progress.
	slice := sys.Cycles(0.0002)
	stalled := 0
	for pool.Responses < uint64(*requests) {
		before := pool.Responses
		sys.RunFor(slice)
		if pool.Responses == before {
			stalled++
		} else {
			stalled = 0
		}
		if stalled >= 50 {
			fmt.Printf("\n  stalled: no responses for %.1f simulated ms; giving up\n",
				50*sys.Seconds(slice)*1e3)
			break
		}
	}

	elapsed := sys.Seconds(sys.Now())
	us := func(cycles uint64) float64 { return sys.Seconds(cycles) * 1e6 }
	hr := 0.0
	if kv.CacheHits+kv.CacheMisses > 0 {
		hr = float64(kv.CacheHits) / float64(kv.CacheHits+kv.CacheMisses)
	}
	var diskWrites, diskBytes uint64
	for _, d := range kv.Disks() {
		diskWrites += d.Writes
		diskBytes += d.BytesMoved
	}
	fmt.Printf("\n  served       %8d requests over %d connections (%d not-found, %d errors)\n",
		pool.Responses, pool.Completed, notFound, errs)
	fmt.Printf("  elapsed      %8.2f simulated ms (%.2f ms prefill)  (%.0f ops/sec)\n",
		elapsed*1e3, prefillMs, float64(pool.Responses)/elapsed)
	fmt.Printf("  latency      %8.1f us p50   %.1f us p99\n",
		us(pool.Lat.Percentile(50)), us(pool.Lat.Percentile(99)))
	fmt.Printf("  store        %8d gets (%.0f%% cache hits), %d puts acked durable, %d deletes\n",
		kv.Gets, hr*100, kv.AckedWrites, kv.Deletes)
	fmt.Printf("  log          %8d flushes, %d disk writes, %d MB moved\n",
		kv.FlushesDone, diskWrites, diskBytes>>20)
	fmt.Printf("  compaction   %8d runs, %d records copied, %d writes refused (log full), live ratio %.2f\n",
		kv.CompactionsDone, kv.CompactedRecords, kv.LogFull, kv.LiveRatio())
	fmt.Printf("  wire         %8d pkts in, %d pkts out, %d retransmits, %d window-deferred, %d rx drops\n",
		nw.ToHost, nw.ToClient, st.Retransmits+nw.Retransmits, nw.WindowDeferred, nic.RxDrops)
	// The lifecycle state prints unconditionally: "solo" (never
	// replicated) and "failed-over"/"syncing" (degraded) are different
	// operational situations, and a 0/0 replication line used to make
	// them indistinguishable.
	if rm == nil {
		fmt.Printf("  replication  state=%s (no replica attached; acks are local-flush only)\n", kv.Lifecycle())
	} else {
		var rWrites uint64
		for _, d := range rm.KV.Disks() {
			rWrites += d.Writes
		}
		fmt.Printf("  replication  state=%s; %d batches (%d records) shipped, %d acks, %d adverts; %d shard heals, %d detaches\n",
			kv.Lifecycle(), kv.ReplBatches, kv.ReplRecords, kv.ReplAcks, kv.ReplAdverts, kv.ReplHeals, kv.ReplDetached)
		fmt.Printf("  replica      %8d applied (%d stale), %d disk writes\n",
			rm.KV.ReplApplied, rm.KV.ReplStale, rWrites)
		if rPool != nil {
			fmt.Printf("  repl reads   %8d GETs served over %d conns (%d refused: lag/sync), %d lag-refused, %d durability waits, p99 %.1f us\n",
				rGets, rPool.Completed, rRefused, rm.KV.ReplicaLagged, rm.KV.ReplicaWaits, us(rPool.Lat.Percentile(99)))
		}
	}
}
