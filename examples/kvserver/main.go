// Kvserver: the paper's architecture carrying the ROADMAP's first
// stateful workload — a key-value store serving a fleet of remote
// clients. Every hop is a message: requests cross the wire, land on the
// NIC queue RSS picks, are routed to the netstack shard owning the
// connection, rise into a per-connection handler thread, drop into the
// store shard owning the key, and (for writes) ride a group-commit
// flush to the shard's private log device before the acknowledgement
// travels all the way back. No locks anywhere on that path.
//
// Run: go run ./examples/kvserver [-clients 128] [-requests 20000] [-readpct 70] [-seed 7]
package main

import (
	"flag"
	"fmt"

	"chanos"
	"chanos/internal/core"
	"chanos/internal/kernel"
	"chanos/internal/machine"
	"chanos/internal/net"
	"chanos/internal/store"
	"chanos/internal/telemetry"
)

func main() {
	var (
		cores      = flag.Int("cores", 64, "simulated cores")
		clients    = flag.Int("clients", 128, "closed-loop clients on the wire")
		requests   = flag.Int("requests", 20_000, "client requests to serve")
		readPct    = flag.Int("readpct", 70, "share of requests that are GETs (0-100)")
		keys       = flag.Int("keys", 4096, "keyspace size")
		seed       = flag.Uint64("seed", 7, "simulation seed")
		loss       = flag.Float64("loss", 0, "wire packet loss probability (each direction)")
		logBlocks  = flag.Int("logblocks", 0, "per-shard log-region blocks (small values force compaction; 0 = default 8192)")
		replicas   = flag.Int("replicas", 0, "replica machines (0 = local-only acks, 1 = quorum: writes ack only when durable on both machines)")
		replReads  = flag.Bool("replica-reads", false, "with -replicas 1: serve a second GET-only fleet from the replica's bounded-staleness read port")
		statsEvery = flag.Float64("stats-every", 0, "print a live telemetry line every N simulated ms (0 = off)")
	)
	flag.Parse()
	if *replReads && *replicas == 0 {
		fmt.Println("kvserver: -replica-reads needs -replicas 1; ignoring")
		*replReads = false
	}

	sys := chanos.New(*cores, chanos.Config{Seed: *seed})
	defer sys.Shutdown()
	k := kernel.New(sys.RT, kernel.Config{})
	nic := sys.NewNIC(machine.NICParams{})
	wp := net.DefaultWireParams()
	wp.Seed = *seed
	wp.LossProb = *loss
	nw := sys.NewNetwork(nic, wp)
	st := sys.NewNetStack(k, nic, net.StackParams{})
	kv := sys.NewStore(k, store.Params{LogBlocks: *logBlocks})
	var rm *store.ReplicaMachine
	if *replicas > 0 {
		if *replicas > 1 {
			fmt.Println("kvserver: only one replica machine is supported; running with 1")
		}
		rwp := net.DefaultWireParams()
		rwp.Seed = *seed + 1
		readPort := 0
		if *replReads {
			readPort = 6390
		}
		rm = store.NewReplicaMachine(sys.Eng, store.ReplicaMachineParams{
			Cores: *cores, Seed: *seed + 2, ReadPort: readPort,
			Store: store.Params{Shards: kv.Shards(), LogBlocks: *logBlocks},
			Wire:  rwp,
		}, nil)
		defer rm.Shutdown()
		kv.AttachReplica(rm)
	}
	l := st.Listen(6379)

	// The telemetry plane: statd sweeps the store, netstack and NIC shard
	// metric sets. Registered sources also serve the STATS wire verb and
	// the final report below; enabling it does not perturb the run (the
	// collector costs the machine zero simulated cycles).
	sd := telemetry.NewStatd(sys.Eng)
	sd.Register("store", kv)
	sd.Register("net", st)
	sd.Register("nic", nic)
	kv.AttachStatd(sd)

	mode := "local-only durability"
	if rm != nil {
		mode = "quorum replication to a second machine"
		if *replReads {
			mode += " + bounded-staleness replica reads"
		}
	}
	fmt.Printf("kvserver: %d cores, %d store shards, %d net shards, %d clients, %d keys, %d%% reads, seed %d, %s\n",
		*cores, kv.Shards(), st.Shards(), *clients, *keys, *readPct, *seed, mode)

	// Accept loop: every connection gets a serving thread.
	sys.Boot("accept", func(t *chanos.Thread) {
		for {
			c, ok := l.Accept(t)
			if !ok {
				return
			}
			t.Spawn(fmt.Sprintf("kv.%d", c.ID()), func(ht *core.Thread) {
				store.ServeConn(ht, c, kv)
			})
		}
	})

	// Prefill the keyspace, then drive the shared seeded workload
	// generator (same one experiment E15 measures): two-tier key
	// popularity, mixed GET/PUT, responses checked as they arrive.
	wl := store.NewWorkload(*seed, *clients, *keys, *readPct, 256)
	filled := false
	sys.Boot("prefill", func(t *chanos.Thread) {
		wl.Prefill(t, kv)
		filled = true
	})
	for !filled {
		sys.RunFor(sys.Cycles(0.0005))
	}
	prefillMs := sys.Seconds(sys.Now()) * 1e3

	// With -replica-reads, a second GET-only fleet reads the same
	// keyspace from the replica machine's bounded-staleness port while
	// the primary fleet runs the mixed workload.
	var rPool *net.ClientPool
	var rGets, rRefused uint64
	if *replReads {
		rwl := store.NewWorkload(*seed+5, *clients, *keys, 100, 256)
		rPool = net.NewClientPool(rm.NW, net.ClientParams{
			Port:        6390,
			Clients:     *clients,
			ReqsPerConn: 8,
			ThinkCycles: 2000,
			Seed:        *seed + 5,
			MakeReq:     rwl.MakeReq,
			OnResp: func(client, req int, payload core.Msg) {
				if resp, ok := payload.(store.KVResponse); ok {
					if resp.OK {
						rGets++
					} else {
						rRefused++
					}
				}
			},
		})
	}

	var notFound, errs uint64
	pool := net.NewClientPool(nw, net.ClientParams{
		Port:        6379,
		Clients:     *clients,
		ReqsPerConn: 8,
		ThinkCycles: 2000,
		Seed:        *seed,
		MakeReq:     wl.MakeReq,
		OnResp: func(client, req int, payload core.Msg) {
			resp, ok := payload.(store.KVResponse)
			if !ok || resp.Err != "" {
				errs++
				return
			}
			if !resp.Found && resp.OK && resp.Ver == 0 {
				notFound++
			}
		},
	})

	// Serve until the fleet has its responses — or stops making progress.
	// With -stats-every, a live telemetry line prints between run slices:
	// the same snapshot path the STATS wire verb serves.
	slice := sys.Cycles(0.0002)
	statsStride := 0
	if *statsEvery > 0 {
		statsStride = int(sys.Cycles(*statsEvery/1e3)/slice) + 1
	}
	lastResp, lastHits, lastMisses := uint64(0), uint64(0), uint64(0)
	lastAt := sys.Now()
	stalled := 0
	for i := 0; pool.Responses < uint64(*requests); i++ {
		before := pool.Responses
		sys.RunFor(slice)
		if statsStride > 0 && (i+1)%statsStride == 0 {
			snap := sd.SnapshotNow()
			stc := snap.Service("store")
			hits, misses := stc.Total("CacheHits"), stc.Total("CacheMisses")
			hr := 0.0
			if d := (hits - lastHits) + (misses - lastMisses); d > 0 {
				hr = float64(hits-lastHits) / float64(d)
			}
			secs := sys.Seconds(sys.Now() - lastAt)
			fmt.Printf("  [%7.2f ms] state=%-11s ops/sec=%-9.0f hit=%3.0f%% repl-lag=%-6d in-flight=%d\n",
				sys.Seconds(sys.Now())*1e3, kv.Lifecycle(),
				float64(pool.Responses-lastResp)/secs, hr*100,
				stc.Total("ReplLag"), stc.Total("WritesInFlight"))
			lastResp, lastHits, lastMisses, lastAt = pool.Responses, hits, misses, sys.Now()
		}
		if pool.Responses == before {
			stalled++
		} else {
			stalled = 0
		}
		if stalled >= 50 {
			fmt.Printf("\n  stalled: no responses for %.1f simulated ms; giving up\n",
				50*sys.Seconds(slice)*1e3)
			break
		}
	}

	// The final report reads one telemetry snapshot — the same folded
	// view a live STATS scrape would have returned.
	snap := sd.SnapshotNow()
	kc := kv.Counters()
	elapsed := sys.Seconds(sys.Now())
	us := func(cycles uint64) float64 { return sys.Seconds(cycles) * 1e6 }
	hr := 0.0
	if kc.CacheHits+kc.CacheMisses > 0 {
		hr = float64(kc.CacheHits) / float64(kc.CacheHits+kc.CacheMisses)
	}
	var diskWrites, diskBytes uint64
	for _, d := range kv.Disks() {
		diskWrites += d.Writes
		diskBytes += d.BytesMoved
	}
	fmt.Printf("\n  served       %8d requests over %d connections (%d not-found, %d errors)\n",
		pool.Responses, pool.Completed, notFound, errs)
	fmt.Printf("  elapsed      %8.2f simulated ms (%.2f ms prefill)  (%.0f ops/sec)\n",
		elapsed*1e3, prefillMs, float64(pool.Responses)/elapsed)
	fmt.Printf("  latency      %8.1f us p50   %.1f us p99\n",
		us(pool.Lat.Percentile(50)), us(pool.Lat.Percentile(99)))
	fmt.Printf("  store        %8d gets (%.0f%% cache hits), %d puts acked durable, %d deletes\n",
		kc.Gets, hr*100, kc.AckedWrites, kc.Deletes)
	if fl := snap.Service("store").TotalHist("FlushLatency"); fl != nil && fl.N > 0 {
		fmt.Printf("  log          %8d flushes (p50 %.1f us, p99 %.1f us), %d disk writes, %d MB moved\n",
			kc.FlushesDone, us(fl.P50), us(fl.P99), diskWrites, diskBytes>>20)
	} else {
		fmt.Printf("  log          %8d flushes, %d disk writes, %d MB moved\n",
			kc.FlushesDone, diskWrites, diskBytes>>20)
	}
	fmt.Printf("  compaction   %8d runs, %d records copied, %d writes refused (log full), live ratio %.2f\n",
		kc.CompactionsDone, kc.CompactedRecords, kc.LogFull, kv.LiveRatio())
	stc := st.Counters()
	fmt.Printf("  wire         %8d pkts in, %d pkts out, %d retransmits, %d window-deferred, %d rx drops\n",
		nw.ToHost, nw.ToClient, stc.Retransmits+nw.Retransmits, nw.WindowDeferred, nic.Counters().RxDrops)
	// The lifecycle state prints unconditionally: "solo" (never
	// replicated) and "failed-over"/"syncing" (degraded) are different
	// operational situations, and a 0/0 replication line used to make
	// them indistinguishable.
	if rm == nil {
		fmt.Printf("  replication  state=%s (no replica attached; acks are local-flush only)\n", kv.Lifecycle())
	} else {
		var rWrites uint64
		for _, d := range rm.KV.Disks() {
			rWrites += d.Writes
		}
		rc := rm.KV.Counters()
		fmt.Printf("  replication  state=%s; %d batches (%d records) shipped, %d acks, %d adverts; %d shard heals, %d detaches\n",
			kv.Lifecycle(), kc.ReplBatches, kc.ReplRecords, kc.ReplAcks, kc.ReplAdverts, kc.ReplHeals, kc.ReplDetached)
		fmt.Printf("  replica      %8d applied (%d stale), %d disk writes\n",
			rc.ReplApplied, rc.ReplStale, rWrites)
		if rPool != nil {
			fmt.Printf("  repl reads   %8d GETs served over %d conns (%d refused: lag/sync), %d lag-refused, %d durability waits, p99 %.1f us\n",
				rGets, rPool.Completed, rRefused, rc.RefusedSyncing+rc.RefusedLag, rc.ReplicaWaits, us(rPool.Lat.Percentile(99)))
		}
	}
	// Conservation self-check over the final snapshot: every read and
	// write arrival must be accounted for by exactly one terminal counter
	// or in-flight gauge.
	if bad := snap.Conservation(); len(bad) > 0 {
		for _, b := range bad {
			fmt.Printf("  CONSERVATION VIOLATED: %s\n", b)
		}
	} else {
		fmt.Printf("  telemetry    snapshot seq=%d at %.2f ms; conservation laws hold\n",
			snap.Seq, sys.Seconds(snap.AtCycles)*1e3)
	}
}
